"""Interactions: the input/output alphabet of the paper's automata.

Definition 1 of the paper types transitions as
``T ⊆ S × ℘(I) × ℘(O) × S`` — a transition consumes a *set* of input
signals ``A ⊆ I`` and produces a *set* of output signals ``B ⊆ O``
within one discrete time unit.  We package such an ``(A, B)`` pair as an
:class:`Interaction`.

Because the full power-set alphabet ``℘(I) × ℘(O)`` grows exponentially
with the signal sets, the library also provides
:class:`InteractionUniverse` — an explicit, finite enumeration of the
interactions a model is allowed to use.  The paper's chaotic closure
(Definition 9) quantifies over "all possible input and output
combinations"; the universe makes that quantification explicit and lets
callers trade the literal power-set semantics (``full``) against the
message-passing alphabet actually used by Real-Time Statecharts
(``singletons``: at most one message consumed and at most one produced
per time unit).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import chain, combinations

__all__ = ["Interaction", "InteractionUniverse", "IDLE"]


def _freeze(signals: Iterable[str] | None) -> frozenset[str]:
    if signals is None:
        return frozenset()
    if isinstance(signals, str):
        raise TypeError(
            f"expected an iterable of signal names, got the string {signals!r}; "
            "wrap single signals in a list or set"
        )
    frozen = frozenset(signals)
    for signal in frozen:
        if not isinstance(signal, str) or not signal:
            raise TypeError(f"signal names must be non-empty strings, got {signal!r}")
    return frozen


class Interaction:
    """One synchronous I/O step: consume ``inputs``, produce ``outputs``.

    Instances are immutable and hashable so they can serve as alphabet
    symbols for composition, learning, and the L* baseline alike.

    Construction is *hash-consed*: two calls with equal signal sets
    return the very same object.  The synthesis loop builds the same
    handful of interactions millions of times (every chaotic-closure
    escape, every composed transition), so interning turns equality
    checks into pointer comparisons and makes the hash and
    :meth:`sort_key` effectively free after first use.  Alphabets are
    tiny in practice (bounded by the interaction universes in play), so
    the intern table stays small.
    """

    __slots__ = ("inputs", "outputs", "_hash", "_sort_key")

    _intern: dict[tuple[frozenset[str], frozenset[str]], "Interaction"] = {}

    def __new__(cls, inputs: Iterable[str] | None = None, outputs: Iterable[str] | None = None):
        if type(inputs) is frozenset and type(outputs) is frozenset:
            # Fast path for the executor/monitor loops: already-frozen
            # signal sets that hit the intern table skip re-validation.
            cached = cls._intern.get((inputs, outputs))
            if cached is not None:
                return cached
        frozen_inputs = _freeze(inputs)
        frozen_outputs = _freeze(outputs)
        key = (frozen_inputs, frozen_outputs)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "inputs", frozen_inputs)
        object.__setattr__(self, "outputs", frozen_outputs)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(
            self, "_sort_key", (tuple(sorted(frozen_inputs)), tuple(sorted(frozen_outputs)))
        )
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Interaction is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Interaction is immutable; cannot delete {name!r}")

    def __reduce__(self):
        return (Interaction, (tuple(self.inputs), tuple(self.outputs)))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Interaction):
            return self.inputs == other.inputs and self.outputs == other.outputs
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_idle(self) -> bool:
        """True when nothing is consumed and nothing is produced."""
        return not self.inputs and not self.outputs

    @property
    def signals(self) -> frozenset[str]:
        """All signal names mentioned by this interaction."""
        return self.inputs | self.outputs

    def union(self, other: "Interaction") -> "Interaction":
        """Point-wise union, used when combining synchronized transitions."""
        return Interaction(self.inputs | other.inputs, self.outputs | other.outputs)

    def restrict(self, inputs: frozenset[str], outputs: frozenset[str]) -> "Interaction":
        """Project onto the given signal sets (used for run projection)."""
        return Interaction(self.inputs & inputs, self.outputs & outputs)

    def __str__(self) -> str:
        def fmt(signals: frozenset[str]) -> str:
            return "{" + ",".join(sorted(signals)) + "}" if signals else "{}"

        return f"{fmt(self.inputs)}/{fmt(self.outputs)}"

    def __repr__(self) -> str:
        return f"Interaction({sorted(self.inputs)!r}, {sorted(self.outputs)!r})"

    def sort_key(self) -> tuple:
        """Deterministic, hashable ordering key for stable iteration.

        Precomputed at interning time, so sorting transitions never
        re-derives ``repr``-like keys (the former hot spot in
        ``Automaton.__init__``).
        """
        return self._sort_key


#: The interaction that consumes and produces nothing — one idle time unit.
IDLE = Interaction()


def _powerset(signals: frozenset[str]) -> Iterator[frozenset[str]]:
    ordered = sorted(signals)
    for subset in chain.from_iterable(combinations(ordered, r) for r in range(len(ordered) + 1)):
        yield frozenset(subset)


class InteractionUniverse:
    """A finite set of interactions over fixed input/output signal sets.

    The universe pins down what "all possible input and output
    combinations" (the ``*`` edges of Figures 3 and 4 in the paper) means
    for a given model.  Construct one with :meth:`full` for the paper's
    literal power-set alphabet, :meth:`singletons` for message-passing
    models, or :meth:`explicit` for a hand-picked alphabet.
    """

    def __init__(self, inputs: Iterable[str], outputs: Iterable[str], interactions: Iterable[Interaction]):
        self.inputs = _freeze(inputs)
        self.outputs = _freeze(outputs)
        self._interactions = tuple(sorted(set(interactions), key=Interaction.sort_key))
        self._interaction_set = frozenset(self._interactions)
        for interaction in self._interactions:
            if not interaction.inputs <= self.inputs:
                raise ValueError(f"{interaction} consumes signals outside the inputs {sorted(self.inputs)}")
            if not interaction.outputs <= self.outputs:
                raise ValueError(f"{interaction} produces signals outside the outputs {sorted(self.outputs)}")

    @classmethod
    def full(cls, inputs: Iterable[str], outputs: Iterable[str]) -> "InteractionUniverse":
        """The literal ``℘(I) × ℘(O)`` alphabet of Definition 1."""
        frozen_inputs, frozen_outputs = _freeze(inputs), _freeze(outputs)
        interactions = [
            Interaction(a, b) for a in _powerset(frozen_inputs) for b in _powerset(frozen_outputs)
        ]
        return cls(frozen_inputs, frozen_outputs, interactions)

    @classmethod
    def singletons(
        cls,
        inputs: Iterable[str],
        outputs: Iterable[str],
        *,
        allow_simultaneous: bool = False,
        include_idle: bool = True,
    ) -> "InteractionUniverse":
        """At most one message consumed and one produced per time unit.

        This is the alphabet induced by the Real-Time Statechart models of
        the paper's running example, where each transition is triggered by
        at most one message and raises at most one message.  With
        ``allow_simultaneous`` the combined receive-and-send interactions
        are included as well.
        """
        frozen_inputs, frozen_outputs = _freeze(inputs), _freeze(outputs)
        interactions: list[Interaction] = []
        if include_idle:
            interactions.append(IDLE)
        interactions.extend(Interaction([i], None) for i in frozen_inputs)
        interactions.extend(Interaction(None, [o]) for o in frozen_outputs)
        if allow_simultaneous:
            interactions.extend(
                Interaction([i], [o]) for i in frozen_inputs for o in frozen_outputs
            )
        return cls(frozen_inputs, frozen_outputs, interactions)

    @classmethod
    def explicit(
        cls, interactions: Iterable[Interaction], *, inputs: Iterable[str] | None = None, outputs: Iterable[str] | None = None
    ) -> "InteractionUniverse":
        """A hand-picked alphabet; signal sets default to the union used."""
        interactions = tuple(interactions)
        if inputs is None:
            inputs = frozenset().union(*(i.inputs for i in interactions)) if interactions else frozenset()
        if outputs is None:
            outputs = frozenset().union(*(i.outputs for i in interactions)) if interactions else frozenset()
        return cls(inputs, outputs, interactions)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self._interactions)

    def __len__(self) -> int:
        return len(self._interactions)

    def __contains__(self, interaction: object) -> bool:
        return interaction in self._interaction_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InteractionUniverse):
            return NotImplemented
        return (
            self.inputs == other.inputs
            and self.outputs == other.outputs
            and self._interactions == other._interactions
        )

    def __hash__(self) -> int:
        return hash((self.inputs, self.outputs, self._interactions))

    def __repr__(self) -> str:
        return (
            f"InteractionUniverse(|I|={len(self.inputs)}, |O|={len(self.outputs)}, "
            f"|Σ|={len(self._interactions)})"
        )
