"""Structural transformations: restriction, renaming, completion, minimization.

:func:`restrict` implements the projection ``M|_{I'/O'/𝓛'}`` used in the
proof of Lemma 3 (dropping the I/O signals and propositions a refinement
added on top of its specification).  :func:`minimize` is a Moore-style
partition refinement for deterministic automata, used to canonicalize
learned models and the L* baseline's hypotheses.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import ModelError
from .automaton import Automaton, State, Transition
from .interaction import Interaction, InteractionUniverse

__all__ = ["restrict", "rename_signals", "hide", "complete", "minimize", "pad_states"]


def hide(automaton: Automaton, signals: Iterable[str], *, name: str | None = None) -> Automaton:
    """Internalize signals: remove them from ``I``/``O`` and all labels.

    Needed when a *pre-composed* context (e.g. role ∥ connector) faces a
    legacy component under the strict Definition 3 matching: the
    context-internal exchanges remain visible in the composed
    interactions and would otherwise be demanded from the peer.  Hiding
    them keeps only the externally relevant I/O — the process-algebra
    hiding operator adapted to the paper's synchronous model.
    """
    hidden = frozenset(signals)
    unknown = hidden - automaton.inputs - automaton.outputs
    if unknown:
        raise ModelError(
            f"cannot hide signals {sorted(unknown)}: not part of {automaton.name!r}'s interface"
        )
    return Automaton(
        states=automaton.states,
        inputs=automaton.inputs - hidden,
        outputs=automaton.outputs - hidden,
        transitions=[
            Transition(
                t.source,
                Interaction(t.inputs - hidden, t.outputs - hidden),
                t.target,
            )
            for t in automaton.transitions
        ],
        initial=automaton.initial,
        labels=automaton.label_map,
        name=name if name is not None else f"{automaton.name}\\hidden",
    )


def restrict(
    automaton: Automaton,
    *,
    inputs: Iterable[str],
    outputs: Iterable[str],
    propositions: Iterable[str] | None = None,
    name: str | None = None,
) -> Automaton:
    """``M|_{I'/O'/𝓛'}``: project interactions and labels onto sub-alphabets.

    Every transition keeps only the signals inside the restricted sets;
    labels keep only the restricted propositions.  The restricted sets
    must be subsets of the automaton's signal sets.
    """
    kept_inputs = frozenset(inputs)
    kept_outputs = frozenset(outputs)
    if not kept_inputs <= automaton.inputs:
        raise ModelError(f"restriction inputs {sorted(kept_inputs)} are not a subset of I")
    if not kept_outputs <= automaton.outputs:
        raise ModelError(f"restriction outputs {sorted(kept_outputs)} are not a subset of O")
    kept_props = None if propositions is None else frozenset(propositions)
    labels = {
        state: props if kept_props is None else props & kept_props
        for state, props in automaton.label_map.items()
    }
    return Automaton(
        states=automaton.states,
        inputs=kept_inputs,
        outputs=kept_outputs,
        transitions=[
            Transition(t.source, t.interaction.restrict(kept_inputs, kept_outputs), t.target)
            for t in automaton.transitions
        ],
        initial=automaton.initial,
        labels=labels,
        name=name if name is not None else f"{automaton.name}|restricted",
    )


def rename_signals(automaton: Automaton, mapping: Mapping[str, str], *, name: str | None = None) -> Automaton:
    """A copy with signals renamed through ``mapping`` (identity default)."""

    def rename(signal: str) -> str:
        return mapping.get(signal, signal)

    def rename_set(signals: frozenset[str]) -> frozenset[str]:
        renamed = frozenset(rename(s) for s in signals)
        if len(renamed) != len(signals):
            raise ModelError(f"signal renaming merges distinct signals in {sorted(signals)}")
        return renamed

    return Automaton(
        states=automaton.states,
        inputs=rename_set(automaton.inputs),
        outputs=rename_set(automaton.outputs),
        transitions=[
            Transition(
                t.source,
                Interaction(rename_set(t.inputs), rename_set(t.outputs)),
                t.target,
            )
            for t in automaton.transitions
        ],
        initial=automaton.initial,
        labels=automaton.label_map,
        name=name if name is not None else automaton.name,
    )


def complete(
    automaton: Automaton,
    universe: InteractionUniverse,
    *,
    sink: State = "⊥",
    sink_labels: Iterable[str] = (),
    name: str | None = None,
) -> Automaton:
    """Make every interaction of ``universe`` enabled by adding a sink.

    Interactions without a transition are redirected to ``sink``, which
    loops on every interaction.  Used to turn partial machines into the
    complete DFAs expected by the L* baseline and by language-style
    reasoning.
    """
    if sink in automaton.states:
        raise ModelError(f"sink state {sink!r} already exists in {automaton.name!r}")
    transitions = list(automaton.transitions)
    needed = False
    for state in automaton.states:
        enabled = automaton.enabled(state)
        for interaction in universe:
            if interaction not in enabled:
                transitions.append(Transition(state, interaction, sink))
                needed = True
    if not needed:
        return automaton
    for interaction in universe:
        transitions.append(Transition(sink, interaction, sink))
    labels = dict(automaton.label_map)
    labels[sink] = frozenset(sink_labels)
    return Automaton(
        states=list(automaton.states) + [sink],
        inputs=automaton.inputs,
        outputs=automaton.outputs,
        transitions=transitions,
        initial=automaton.initial,
        labels=labels,
        name=name if name is not None else f"{automaton.name}^c",
    )


def pad_states(
    automaton: Automaton,
    count: int,
    *,
    seed: int = 0,
    prefix: str = "pad",
    name: str | None = None,
) -> Automaton:
    """Add ``count`` unreachable chaff states with seeded random wiring.

    The paper's "overbuilt" legacy components carry behavior the context
    never exercises; this hook manufactures that situation for generated
    scenarios: the pad states form their own random subgraph (strong
    determinism preserved — at most one reaction per ``(state, inputs)``
    pair) but are unreachable from the initial states, so the language,
    labeling, and every verdict over the original part are untouched
    while ``|S|`` — and with it any state-count heuristic such as the
    dense-core floor or an assumed L* state bound — grows.
    """
    import random

    if count < 0:
        raise ModelError("pad count must be non-negative")
    if count == 0:
        return automaton
    rng = random.Random(seed)
    pads = [f"{prefix}{index}" for index in range(count)]
    taken = set(automaton.states)
    for pad in pads:
        if pad in taken:
            raise ModelError(f"pad state {pad!r} already exists in {automaton.name!r}")
    input_sets = [frozenset()] + [frozenset({signal}) for signal in sorted(automaton.inputs)]
    output_sets = [frozenset()] + [frozenset({signal}) for signal in sorted(automaton.outputs)]
    transitions = list(automaton.transitions)
    for pad in pads:
        for input_set in input_sets:
            if rng.random() < 0.5:
                continue
            transitions.append(
                Transition(pad, Interaction(input_set, rng.choice(output_sets)), rng.choice(pads))
            )
    return Automaton(
        states=list(automaton.states) + pads,
        inputs=automaton.inputs,
        outputs=automaton.outputs,
        transitions=transitions,
        initial=automaton.initial,
        labels=automaton.label_map,
        name=name if name is not None else f"{automaton.name}+{count}pad",
    )


def minimize(automaton: Automaton, *, name: str | None = None) -> Automaton:
    """Moore partition refinement for deterministic automata.

    States are merged when they carry the same labels and are
    transition-equivalent under every interaction.  The automaton must be
    deterministic in the sense of Definition 1 (§2.6); the result is
    language- and labeling-equivalent.
    """
    if not automaton.is_deterministic():
        raise ModelError(f"minimize requires a deterministic automaton, got {automaton.name!r}")

    # Initial partition: by label set and by enabled interaction set (the
    # latter separates states with different refusal/deadlock behavior).
    def signature(state: State) -> tuple:
        enabled = tuple(sorted((i.sort_key() for i in automaton.enabled(state))))
        return (tuple(sorted(automaton.labels(state))), enabled)

    blocks: dict[tuple, set[State]] = {}
    for state in automaton.states:
        blocks.setdefault(signature(state), set()).add(state)
    partition: list[frozenset[State]] = [frozenset(block) for block in blocks.values()]

    def block_of(state: State, parts: list[frozenset[State]]) -> int:
        for index, part in enumerate(parts):
            if state in part:
                return index
        raise AssertionError(f"state {state!r} in no block")

    changed = True
    while changed:
        changed = False
        next_partition: list[frozenset[State]] = []
        for part in partition:
            refined: dict[tuple, set[State]] = {}
            for state in part:
                key = tuple(
                    sorted(
                        (t.interaction.sort_key(), block_of(t.target, partition))
                        for t in automaton.transitions_from(state)
                    )
                )
                refined.setdefault(key, set()).add(state)
            if len(refined) > 1:
                changed = True
            next_partition.extend(frozenset(block) for block in refined.values())
        partition = next_partition

    representative = {}
    for part in partition:
        rep = sorted(part, key=repr)[0]
        for state in part:
            representative[state] = rep
    kept = frozenset(representative.values())
    transitions = {
        Transition(representative[t.source], t.interaction, representative[t.target])
        for t in automaton.transitions
    }
    return Automaton(
        states=kept,
        inputs=automaton.inputs,
        outputs=automaton.outputs,
        transitions=transitions,
        initial={representative[q] for q in automaton.initial},
        labels={s: automaton.labels(s) for s in kept},
        name=name if name is not None else f"min({automaton.name})",
    )
