"""Dense integer-indexed state core: interned ids, CSR adjacency, bitsets.

The dict/set fixpoint solvers of :mod:`repro.logic.checker` pay Python's
per-object tax on every edge: hashing a composite state tuple, chasing a
dict slot, and boxing the result.  This module provides the flat data
the rewritten solvers run on instead:

``StateInterner``
    Assigns each state a small contiguous integer id, once.  Ids are
    stable across ``PYTHONHASHSEED`` because every batch of fresh states
    is sorted by ``repr`` before numbering, and *delta-extendable*: the
    incremental engine keeps one interner alive across learning
    iterations, so surviving states keep their ids and warm-start
    structures remain directly comparable.  (States whose reprs collide
    are numbered in set-iteration order within their tie — the same
    degeneracy class as the crc32-of-repr sharding this replaces, which
    mapped such ties to one shard.)

``DenseGraph``
    The transition relation in CSR form: ``array('I')`` offset/target
    pairs for the forward edges and a counting-sorted reverse view for
    predecessor scans.  Row order is id order, so the layout itself is
    hash-seed independent.

Bitset helpers
    Satisfaction sets travel as byte-per-state flag buffers
    (``bytearray``) inside a solve and as packed little-endian big-int
    masks at rest.  ``pre_exists`` / ``pre_forall`` are the predecessor
    image operators (``pre∃``/``pre∀``) the bounded dynamic programs
    and ``AX``/``EX`` reduce to; they take an optional numpy fast path
    (``logical_or.reduceat`` over gathered edge segments) when the
    candidate set is large enough to amortize array conversion, and a
    pure-stdlib early-exit scan otherwise.  numpy is an optional
    accelerator, never a dependency: every caller works bit-identically
    without it.

Shard ownership over ids is plain ``id % K`` (:func:`shard_of_id`) —
contiguous, branch-free, and computable from a flat array, unlike the
crc32-of-repr hash it retires from the hot path (see
:func:`repro.automata.sharding.shard_of`, kept as the documented
fallback for un-interned inputs).
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Iterable, Mapping

try:  # pragma: no cover - exercised via the numpy-absent CI leg
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "DENSE_ENV",
    "DENSE_PRODUCT_ENV",
    "DENSE_STATE_FLOOR",
    "DenseGraph",
    "HAVE_NUMPY",
    "StateInterner",
    "flags_of_ids",
    "flags_of_mask",
    "ids_of_mask",
    "mask_of_flags",
    "mask_of_ids",
    "resolve_dense",
    "resolve_dense_product",
    "shard_of_id",
]

#: Environment toggle for the dense checker core.  When set, it forces
#: the mode for every checker (``REPRO_DENSE=0`` pins the legacy
#: dict/set solvers, anything truthy pins the dense core); when unset,
#: checkers pick per product size (:data:`DENSE_STATE_FLOOR`).
DENSE_ENV = "REPRO_DENSE"

#: Environment toggle for the dense *product BFS* (the id-space
#: exploration of :class:`repro.automata.incremental.IncrementalProduct`).
#: Deliberately separate from :data:`DENSE_ENV` so the two regimes can
#: be pinned independently in CI; same truthiness convention.
DENSE_PRODUCT_ENV = "REPRO_DENSE_PRODUCT"

_FALSY = {"0", "false", "no", "off"}

#: State-count floor for the automatic mode choice: below it, interning
#: every state and converting satisfaction sets to flag buffers at each
#: solve boundary costs more than the dict/set solvers' per-object tax
#: saves, so small products (the warm loop's bread and butter) stay on
#: the dict engine; at and above it the flat arrays win — decisively so
#: on the bounded DPs, where the numpy kernels engage too.
DENSE_STATE_FLOOR = 2048

#: Candidate-set size below which the stdlib early-exit scan beats the
#: numpy gather/reduceat pipeline (array conversion is the fixed cost).
NUMPY_KERNEL_FLOOR = 1024

#: ``_BITS_OF[b]`` lists the set bit positions of byte value ``b``.
_BITS_OF = tuple(
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)
)


def resolve_dense(value: bool | None = None, state_count: int | None = None) -> bool:
    """Resolve the dense-core toggle.

    Precedence: an explicit ``value`` wins, then a set ``REPRO_DENSE``
    environment variable, then the size heuristic — dense iff
    ``state_count`` reaches :data:`DENSE_STATE_FLOOR`.  Callers that
    have no product at hand (``state_count=None``) get the dense
    default.
    """
    if value is not None:
        return bool(value)
    raw = os.environ.get(DENSE_ENV)
    if raw is not None:
        return raw.strip().lower() not in _FALSY
    if state_count is None:
        return True
    return state_count >= DENSE_STATE_FLOOR


def resolve_dense_product(
    value: bool | None = None, state_count: int | None = None
) -> bool:
    """Resolve the dense product-BFS toggle.

    Same precedence ladder as :func:`resolve_dense`, reading
    ``REPRO_DENSE_PRODUCT`` instead: an explicit ``value`` wins, then
    the environment, then the size heuristic against
    :data:`DENSE_STATE_FLOOR` (``state_count`` is the *estimated* joint
    state bound — the product of component sizes — since the reachable
    set is only known after the exploration this toggle selects).
    Callers with no estimate default to dense.
    """
    if value is not None:
        return bool(value)
    raw = os.environ.get(DENSE_PRODUCT_ENV)
    if raw is not None:
        return raw.strip().lower() not in _FALSY
    if state_count is None:
        return True
    return state_count >= DENSE_STATE_FLOOR


def shard_of_id(ident: int, shards: int) -> int:
    """Shard ownership of an interned id: contiguous ``id % K``."""
    return ident % shards


# --------------------------------------------------------------- bitsets


def mask_of_ids(ids: Iterable[int], size: int) -> int:
    """Pack ids into a little-endian big-int bitset of ``size`` bits."""
    buf = bytearray((size + 7) >> 3)
    for ident in ids:
        buf[ident >> 3] |= 1 << (ident & 7)
    return int.from_bytes(buf, "little")


def ids_of_mask(mask: int) -> list[int]:
    """Unpack a bitset back into its sorted id list."""
    out: list[int] = []
    append = out.append
    base = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) >> 3, "little"):
        if byte:
            for bit in _BITS_OF[byte]:
                append(base + bit)
        base += 8
    return out


def flags_of_mask(mask: int, size: int) -> bytearray:
    """Expand a bitset into a byte-per-state flag buffer."""
    raw = mask.to_bytes((size + 7) >> 3, "little")
    if _np is not None and size >= NUMPY_KERNEL_FLOOR:
        bits = _np.unpackbits(
            _np.frombuffer(raw, dtype=_np.uint8), bitorder="little"
        )[:size]
        return bytearray(bits.tobytes())
    flags = bytearray(size)
    base = 0
    for byte in raw:
        if byte:
            for bit in _BITS_OF[byte]:
                flags[base + bit] = 1
        base += 8
    return flags


def flags_of_ids(ids: "list[int]", size: int) -> bytearray:
    """Byte-per-state flag buffer with exactly ``ids`` set.

    The dense bounded DPs rebuild a membership buffer from a satisfied
    id list once per layer, so this takes the same numpy fast path as
    the image kernels when the list is large enough to amortize it.
    """
    if _np is not None and len(ids) >= NUMPY_KERNEL_FLOOR:
        flags = _np.zeros(size, dtype=_np.uint8)
        flags[_np.asarray(ids, dtype=_np.int64)] = 1
        return bytearray(flags.tobytes())
    flags = bytearray(size)
    for ident in ids:
        flags[ident] = 1
    return flags


def mask_of_flags(flags: bytearray | bytes) -> int:
    """Pack a flag buffer back into a bitset."""
    if _np is not None and len(flags) >= NUMPY_KERNEL_FLOOR:
        packed = _np.packbits(
            _np.frombuffer(bytes(flags), dtype=_np.uint8), bitorder="little"
        )
        return int.from_bytes(packed.tobytes(), "little")
    buf = bytearray((len(flags) + 7) >> 3)
    for ident, value in enumerate(flags):
        if value:
            buf[ident >> 3] |= 1 << (ident & 7)
    return int.from_bytes(buf, "little")


# -------------------------------------------------------------- interner


class StateInterner:
    """Append-only state ↔ contiguous-id bijection.

    Ids are dense (``0..len-1``), assigned in repr-sorted order per
    :meth:`extend` batch (or in first-seen order via :meth:`intern_ids`
    when the caller's iteration order is itself deterministic), and
    never change once assigned — the warm checker chain shares one
    interner so ids survive learning steps.
    """

    __slots__ = ("_ids", "_states")

    def __init__(self, states: Iterable[object] = ()):
        self._ids: dict = {}
        self._states: list = []
        if states:
            self.extend(states)

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state: object) -> bool:
        return state in self._ids

    def __repr__(self) -> str:
        return f"StateInterner({len(self._states)} states)"

    def extend(self, states: Iterable[object]) -> int:
        """Intern every not-yet-known state; return how many were added.

        Fresh states are numbered in repr-sorted order so the id
        assignment is independent of set-iteration (hash-seed) order.
        Already-interned states keep their ids (delta extension).
        """
        ids = self._ids
        fresh = [s for s in states if s not in ids]
        if not fresh:
            return 0
        fresh.sort(key=repr)
        store = self._states
        added = 0
        for state in fresh:
            if state in ids:  # duplicate within one batch
                continue
            ids[state] = len(store)
            store.append(state)
            added += 1
        return added

    def intern_ids(self, states: Iterable[object]) -> list[int]:
        """Intern unknown states in first-seen order; return every id.

        The discovery-order twin of :meth:`extend` for callers whose
        iteration order is already deterministic (the product BFS walks
        canonical ``ordered_transitions`` slices, so its discovery
        order never depends on the hash seed): one dict probe per
        state, no repr materialization, and the ids come back aligned
        with the input — exactly what the flat edge-target arrays need.
        """
        ids = self._ids
        store = self._states
        out = []
        append = out.append
        get = ids.get
        for state in states:
            ident = get(state)
            if ident is None:
                ident = len(store)
                ids[state] = ident
                store.append(state)
            append(ident)
        return out

    def id_of(self, state: object) -> int:
        return self._ids[state]

    def get(self, state: object, default: int | None = None) -> int | None:
        return self._ids.get(state, default)

    def resolve(self, ident: int) -> object:
        return self._states[ident]

    def ids_of(self, states: Iterable[object]) -> list[int]:
        ids = self._ids
        return [ids[s] for s in states]

    def states_of(self, idents: Iterable[int]) -> frozenset:
        store = self._states
        return frozenset(store[i] for i in idents)

    def mask_of(self, states: Iterable[object], size: int | None = None) -> int:
        return mask_of_ids(self.ids_of(states), len(self) if size is None else size)

    def flags_of(self, states: Iterable[object], size: int | None = None) -> bytearray:
        """Byte-per-state membership flags sized to the interner (or ``size``)."""
        flags = bytearray(len(self) if size is None else size)
        ids = self._ids
        for state in states:
            flags[ids[state]] = 1
        return flags


# ------------------------------------------------------------- CSR graph


class DenseGraph:
    """CSR adjacency over interned ids, forward and reverse.

    ``fwd_targets[fwd_offsets[i]:fwd_offsets[i+1]]`` are the successor
    ids of state ``i`` (deduplicated, repr-sorted — inherited from the
    checker's successor tuples); the reverse arrays are built by
    counting sort, so each predecessor list is ordered by source id.
    States of the interner without a row (earlier automaton versions)
    simply have empty rows.
    """

    __slots__ = (
        "size",
        "fwd_offsets",
        "fwd_targets",
        "rev_offsets",
        "rev_sources",
        "_np_fwd",
    )

    def __init__(self, size, fwd_offsets, fwd_targets, rev_offsets, rev_sources):
        self.size = size
        self.fwd_offsets = fwd_offsets
        self.fwd_targets = fwd_targets
        self.rev_offsets = rev_offsets
        self.rev_sources = rev_sources
        self._np_fwd = None

    @classmethod
    def from_successors(
        cls, interner: StateInterner, successors: Mapping[object, tuple]
    ) -> "DenseGraph":
        n = len(interner)
        ids = interner._ids
        rows: list[tuple[int, ...]] = [()] * n
        for state, targets in successors.items():
            rows[ids[state]] = tuple(ids[t] for t in targets)
        fwd_offsets = array("I", bytes(4 * (n + 1)))
        total = 0
        for sid in range(n):
            total += len(rows[sid])
            fwd_offsets[sid + 1] = total
        fwd_targets = array("I", bytes(4 * total))
        cursor = 0
        indegree = [0] * (n + 1)
        for sid in range(n):
            for target in rows[sid]:
                fwd_targets[cursor] = target
                cursor += 1
                indegree[target + 1] += 1
        rev_offsets = array("I", bytes(4 * (n + 1)))
        running = 0
        for sid in range(n + 1):
            running += indegree[sid]
            rev_offsets[sid] = running
        rev_sources = array("I", bytes(4 * total))
        fill = list(rev_offsets[:n])
        for sid in range(n):
            for target in rows[sid]:
                rev_sources[fill[target]] = sid
                fill[target] += 1
        return cls(n, fwd_offsets, fwd_targets, rev_offsets, rev_sources)

    @property
    def edge_count(self) -> int:
        return len(self.fwd_targets)

    def successor_ids(self, ident: int) -> array:
        return self.fwd_targets[self.fwd_offsets[ident] : self.fwd_offsets[ident + 1]]

    def predecessor_ids(self, ident: int) -> array:
        return self.rev_sources[self.rev_offsets[ident] : self.rev_offsets[ident + 1]]

    # --------------------------------------------------- image operators

    def pre_exists(
        self,
        member_flags: bytearray | bytes,
        candidates: Iterable[int],
        *,
        empty_satisfies: bool = False,
    ) -> list[int]:
        """``{i ∈ candidates : succ(i) ∩ member ≠ ∅}`` (``pre∃``).

        ``empty_satisfies`` controls deadlock rows: ``EX`` wants them
        out (default), bounded ``EG`` wants them in (a maximal path may
        end there).
        """
        if (
            _np is not None
            and isinstance(candidates, (list, array))
            and len(candidates) >= NUMPY_KERNEL_FLOOR
        ):
            return self._np_pre(
                member_flags, candidates, universal=False, empty_value=empty_satisfies
            )
        offsets = self.fwd_offsets
        targets = self.fwd_targets
        out: list[int] = []
        append = out.append
        for ident in candidates:
            lo = offsets[ident]
            hi = offsets[ident + 1]
            if lo == hi:
                if empty_satisfies:
                    append(ident)
                continue
            for edge in range(lo, hi):
                if member_flags[targets[edge]]:
                    append(ident)
                    break
        return out

    def pre_forall(
        self,
        member_flags: bytearray | bytes,
        candidates: Iterable[int],
        *,
        require_successor: bool,
    ) -> list[int]:
        """``{i ∈ candidates : succ(i) ⊆ member}`` (``pre∀``).

        ``require_successor=True`` drops deadlock rows (``AF``-style
        obligations fail there); ``False`` keeps them (``AX``/``AG``
        are vacuously true at a deadlock).
        """
        if (
            _np is not None
            and isinstance(candidates, (list, array))
            and len(candidates) >= NUMPY_KERNEL_FLOOR
        ):
            return self._np_pre(
                member_flags,
                candidates,
                universal=True,
                empty_value=not require_successor,
            )
        offsets = self.fwd_offsets
        targets = self.fwd_targets
        out: list[int] = []
        append = out.append
        for ident in candidates:
            lo = offsets[ident]
            hi = offsets[ident + 1]
            if lo == hi:
                if not require_successor:
                    append(ident)
                continue
            for edge in range(lo, hi):
                if not member_flags[targets[edge]]:
                    break
            else:
                append(ident)
        return out

    def _np_csr(self):
        cached = self._np_fwd
        if cached is None:
            cached = (
                _np.frombuffer(self.fwd_offsets, dtype=_np.uint32).astype(_np.int64),
                _np.frombuffer(self.fwd_targets, dtype=_np.uint32).astype(_np.int64)
                if len(self.fwd_targets)
                else _np.zeros(0, dtype=_np.int64),
            )
            self._np_fwd = cached
        return cached

    def _np_pre(self, member_flags, candidates, *, universal, empty_value):
        np = _np
        offsets, targets = self._np_csr()
        cand = np.asarray(candidates, dtype=np.int64)
        starts = offsets[cand]
        counts = offsets[cand + 1] - starts
        nonempty = counts > 0
        total = int(counts.sum())
        result = np.full(len(cand), bool(empty_value))
        if total:
            bounds = np.cumsum(counts) - counts
            gather = np.arange(total, dtype=np.int64) + np.repeat(
                starts - bounds, counts
            )
            member = np.frombuffer(bytes(member_flags), dtype=np.uint8).view(np.bool_)
            values = member[targets[gather]]
            segment_starts = bounds[nonempty]
            if universal:
                result[nonempty] = np.logical_and.reduceat(values, segment_starts)
            else:
                result[nonempty] = np.logical_or.reduceat(values, segment_starts)
        return cand[result].tolist()
