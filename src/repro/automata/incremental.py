"""Incremental maintenance of closures, products, and checkers (§4.4).

The synthesis loop of §4 re-verifies ``M_a^c ∥ chaos(M_l^i)`` after every
learning step.  Each step touches only a handful of states of the
learned model ``M_l^i`` — one new transition, a few refusals — yet the
seed implementation rebuilt the chaotic closure, re-explored the full
product state space, and re-ran every fixpoint from scratch, making the
loop quadratic in practice.  This module carries all three structures
across iterations:

:class:`ClosureCache`
    Definition 9's closure decomposes per base state: the transitions
    leaving ``(s,0)``/``(s,1)`` depend only on ``s``'s local knowledge
    (outgoing transitions, refusals, labels).  The cache re-derives the
    transition group of exactly the states whose knowledge changed and
    reports them as the *dirty* closure states.

:class:`IncrementalProduct`
    The n-ary synchronous product re-explored from the initial joint
    states, reusing the cached outgoing edges of every joint state whose
    component-local states are all clean.  The matching discipline of
    Definition 3 depends only on the components' *static* signal
    alphabets, so a left fold over the component transitions reproduces
    :func:`~repro.automata.composition.compose` /
    :func:`~repro.automata.composition.compose_all` exactly — which the
    optional ``validate`` mode re-checks against a full recompose,
    falling back to the from-scratch result on any mismatch.  With
    ``parallelism=K`` the re-exploration is sharded by a stable
    joint-state hash and run on a reusable worker pool (see
    :mod:`repro.automata.sharding`); the merged result is bit-identical
    to the sequential exploration for every ``K``.

:class:`IncrementalVerifier`
    Ties both together with the model checker's warm start
    (:class:`~repro.logic.checker.ModelChecker` with ``warm_from``):
    dirty closure states make dirty product states make checker seeds,
    and everything outside the region that can reach a seed keeps its
    previous satisfaction sets.

Soundness of the dirtiness propagation: a joint state's outgoing edges
are a function of its component-local transition groups, so a joint
state all of whose locals kept their groups verbatim has verbatim-equal
edges and labels; the checker then only needs seeds for the remaining
(changed or new) product states.
"""

from __future__ import annotations

import time
from array import array
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from itertools import product as iproduct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..logic.checker import ModelChecker

from ..errors import CompositionError, ModelError
from .automaton import Automaton, State, Transition
from .chaos import (
    CHAOS_PROPOSITION,
    S_ALL,
    S_DELTA,
    ClosureState,
    chaotic_core_transitions,
    closure_state_transitions,
)
from .composition import Semantics, compose, compose_all, composable
from .incomplete import IncompleteAutomaton
from .interaction import InteractionUniverse
from .interning import StateInterner, mask_of_flags, resolve_dense_product
from ..obs.tracer import NULL_TRACER
from .sharding import (
    FLAT_PROCESS_WORKLOAD_FLOOR,
    SEQUENTIAL_WORKLOAD_FLOOR,
    ShardReport,
    WorkerPool,
    check_strategy,
    get_pool,
    resolve_checker_parallelism,
    resolve_parallelism,
    resolve_product_strategy,
    select_strategy,
    shard_of,
)

__all__ = [
    "ClosureUpdate",
    "ClosureCache",
    "ProductUpdate",
    "IncrementalProduct",
    "VerificationStep",
    "IncrementalVerifier",
]

#: Below this many dirty closure groups, the cache rebuilds inline even
#: when a worker pool is available (pool dispatch would dominate).
_CLOSURE_PARALLEL_FLOOR = 16


# --------------------------------------------------------------------- closure


@dataclass(frozen=True)
class ClosureUpdate:
    """One incremental closure step."""

    closure: Automaton
    dirty_states: frozenset[State]  #: closure states whose edges/labels changed
    reused_groups: int
    rebuilt_groups: int


class ClosureCache:
    """Maintains ``chaos(M_l^i)`` across learning steps of one model.

    ``update`` produces an automaton equal (up to name) to
    :func:`~repro.automata.chaos.chaotic_closure` of the given model,
    rebuilding only the per-state transition groups whose local
    knowledge — outgoing transitions, refusals, labels — changed since
    the previous call.
    """

    def __init__(
        self,
        universe: InteractionUniverse,
        *,
        deterministic_implementation: bool = True,
        parallelism: int | None = None,
        strategy: str | None = None,
        pool: WorkerPool | None = None,
        tracer=None,
    ):
        self.universe = universe
        self.deterministic_implementation = deterministic_implementation
        self.parallelism = resolve_parallelism(parallelism)
        self.strategy = check_strategy(strategy)
        self._pool = pool if pool is not None else get_pool()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._core = tuple(sorted(chaotic_core_transitions(universe), key=Transition.sort_key))
        #: per closure-source-state outgoing transitions, each slice sorted
        #: by :meth:`Transition.sort_key` (canonical per-source order).
        self._groups: dict[State, dict[State, tuple[Transition, ...]]] = {}
        self._group_sizes: dict[State, int] = {}
        self._signatures: dict[State, tuple] = {}
        self._previous_initial: frozenset[State] | None = None

    def _signature(self, incomplete: IncompleteAutomaton, state: State) -> tuple:
        return (
            incomplete.automaton.transitions_from(state),
            incomplete.refused(state),
            incomplete.labels(state),
        )

    def _derive_groups(
        self, incomplete: IncompleteAutomaton, dirty_bases: Sequence[State]
    ) -> "list[tuple[Transition, ...]]":
        """Re-derive the closure groups of the dirty bases, in order.

        Group derivation is a pure function of one base state's local
        knowledge, so a large dirty report (e.g. warm-started knowledge,
        or the first update of a run) can fan out over the shared worker
        pool; ``map`` preserves task order, so the result is independent
        of scheduling.  Small reports rebuild inline — the common case
        after a single learning step is one or two dirty groups.
        """
        derive = lambda state: closure_state_transitions(  # noqa: E731
            incomplete,
            self.universe,
            state,
            deterministic_implementation=self.deterministic_implementation,
        )
        strategy = self.strategy
        if strategy is None:
            strategy = (
                "thread"
                if self.parallelism > 1 and len(dirty_bases) >= _CLOSURE_PARALLEL_FLOOR
                else "sequential"
            )
        if strategy != "thread":  # closures are cheap: never worth pickling
            strategy = "sequential"
        return self._pool.map(strategy, derive, list(dirty_bases), workers=self.parallelism)

    def update(self, incomplete: IncompleteAutomaton, *, name: str | None = None) -> ClosureUpdate:
        with self.tracer.span("closure.update", model=incomplete.name):
            update = self._update(incomplete, name=name)
        self.tracer.count("closure_cache_hits", update.reused_groups)
        self.tracer.count("closure_cache_misses", update.rebuilt_groups)
        return update

    def _update(self, incomplete: IncompleteAutomaton, *, name: str | None = None) -> ClosureUpdate:
        if (
            self.universe.inputs != incomplete.inputs
            or self.universe.outputs != incomplete.outputs
        ):
            raise ModelError(
                f"universe signals (I={sorted(self.universe.inputs)}, "
                f"O={sorted(self.universe.outputs)}) do not match automaton "
                f"{incomplete.name!r} (I={sorted(incomplete.inputs)}, "
                f"O={sorted(incomplete.outputs)})"
            )
        base_states = incomplete.states
        # Canonical base order: a frozenset's iteration order varies with
        # the hash seed, and letting it pick the ``by_source`` insertion
        # order would make assembled automata differ structurally from
        # run to run (the ordering bug class audited in
        # ``tests/test_product_sharding.py``).
        ordered_bases = sorted(base_states, key=repr)
        dirty_bases: list[State] = []
        reused = 0
        for state in ordered_bases:
            signature = self._signature(incomplete, state)
            if self._signatures.get(state) == signature:
                reused += 1
                continue
            dirty_bases.append(state)
            self._signatures[state] = signature
        rebuild = self._derive_groups(incomplete, dirty_bases)
        for state, group in zip(dirty_bases, rebuild):
            per_source: dict[State, list[Transition]] = {}
            for transition in group:
                per_source.setdefault(transition.source, []).append(transition)
            self._groups[state] = {
                source: tuple(sorted(slice_, key=Transition.sort_key))
                for source, slice_ in per_source.items()
            }
            self._group_sizes[state] = len(group)
        for gone in [s for s in self._groups if s not in base_states]:
            del self._groups[gone]
            del self._group_sizes[gone]
            del self._signatures[gone]

        initial = frozenset(incomplete.initial)
        if self._previous_initial is not None and initial != self._previous_initial:
            # Initial-state changes don't alter any state's edges, but be
            # conservative: treat every doubled initial state as dirty.
            dirty_bases.extend(sorted(initial | self._previous_initial, key=repr))
        self._previous_initial = initial

        by_source: dict[State, tuple[Transition, ...]] = {}
        count = 0
        for state in ordered_bases:
            by_source.update(self._groups[state])
            count += self._group_sizes[state]
        by_source[S_ALL] = self._core
        count += len(self._core)
        states: list[State] = [ClosureState(s, tag) for s in ordered_bases for tag in (False, True)]
        states.extend([S_ALL, S_DELTA])
        labels: dict[State, frozenset[str]] = {
            ClosureState(s, tag): incomplete.labels(s) for s in ordered_bases for tag in (False, True)
        }
        labels[S_ALL] = frozenset({CHAOS_PROPOSITION})
        labels[S_DELTA] = frozenset({CHAOS_PROPOSITION})
        closure = Automaton._assemble(
            states=frozenset(states),
            inputs=incomplete.inputs,
            outputs=incomplete.outputs,
            by_source=by_source,
            transition_count=count,
            initial=[ClosureState(q, tag) for q in incomplete.initial for tag in (False, True)],
            labels=labels,
            name=name if name is not None else f"chaos({incomplete.name})",
        )
        dirty = frozenset(
            ClosureState(s, tag) for s in set(dirty_bases) for tag in (False, True)
        )
        return ClosureUpdate(
            closure=closure,
            dirty_states=dirty,
            reused_groups=reused,
            rebuilt_groups=len(base_states) - reused,
        )


# --------------------------------------------------------------------- product


@dataclass(frozen=True)
class ProductUpdate:
    """One incremental product step."""

    automaton: Automaton
    dirty_states: frozenset[State]  #: joint states rebuilt this step (checker seeds)
    hits: int
    misses: int
    fell_back: bool
    #: merged per-shard dirty reports (one entry per shard, in shard order)
    shards: tuple[ShardReport, ...] = ()
    #: whether the id-space (dense) exploration ran this update
    dense: bool = False
    #: interner size after the update (0 on the legacy dict path)
    dense_states: int = 0
    #: 64-bit words of the packed reachable-set bitset (0 on the legacy path)
    bitset_words: int = 0


def _joint_edges(
    joint: tuple,
    components: Sequence[Automaton],
    in_prefix: Sequence[frozenset[str]],
    out_prefix: Sequence[frozenset[str]],
    strict: bool,
) -> tuple[tuple[Transition, ...], tuple]:
    """The outgoing product edges of one joint state, by left fold.

    Reproduces ``compose``'s matching per fold step: the accumulated
    prefix plays "first" with the *static* union alphabets
    ``in_prefix[k]``/``out_prefix[k]``, component ``k`` plays "second".
    A pure function of its arguments — shard workers (threads or forked
    processes) call it without any shared mutable state.
    """
    acc: list[tuple] = [
        (t.interaction, (t.target,)) for t in components[0].transitions_from(joint[0])
    ]
    for k in range(1, len(components)):
        component = components[k]
        comp_in, comp_out = component.inputs, component.outputs
        pref_in, pref_out = in_prefix[k], out_prefix[k]
        merged: list[tuple] = []
        for interaction, targets in acc:
            a, b = interaction.inputs, interaction.outputs
            for t in component.transitions_from(joint[k]):
                a2, b2 = t.interaction.inputs, t.interaction.outputs
                if strict:
                    if (a & comp_out) != b2 or (a2 & pref_out) != b:
                        continue
                else:
                    if (a & comp_out) != (b2 & pref_in) or (a2 & pref_out) != (b & comp_in):
                        continue
                merged.append((interaction.union(t.interaction), (*targets, t.target)))
        acc = merged
    edges = sorted(
        {Transition(joint, interaction, targets) for interaction, targets in acc},
        key=Transition.sort_key,
    )
    targets = tuple(dict.fromkeys(edge.target for edge in edges))
    return tuple(edges), targets


@dataclass(frozen=True)
class _ShardTask:
    """One shard's work for one handoff round (picklable for processes)."""

    shard: int
    shards: int
    frontier: tuple
    visited: frozenset  #: own-shard joints already claimed (frontier included)
    components: tuple
    in_prefix: tuple
    out_prefix: tuple
    strict: bool
    cache: dict  #: read-only view of the edge cache (own-shard slice suffices)


@dataclass(frozen=True)
class _ShardDelta:
    """What one shard's local BFS produced in one handoff round."""

    shard: int
    states_explored: int
    by_source: dict
    labels: dict
    new_entries: dict  #: joint -> (edges, targets, label) recomputed this round
    claimed: tuple  #: own-shard joints first reached during this round
    handoffs: tuple  #: cross-shard targets, in discovery order
    hits: int
    misses: int


def _explore_shard(task: _ShardTask) -> _ShardDelta:
    """Run one shard's local BFS to exhaustion within its own shard.

    The worker owns every joint state whose stable hash maps to its
    shard: it explores those states (reusing cached edges where present,
    re-deriving the rest), follows own-shard targets immediately, and
    emits every cross-shard target as a handoff for the merge step.
    Because each joint state is explored by exactly one shard, the
    per-state results — edges, labels, hit/miss classification — are
    identical to the sequential exploration regardless of shard count or
    scheduling order.
    """
    shard, shards = task.shard, task.shards
    cache = task.cache
    components = task.components
    in_prefix, out_prefix, strict = task.in_prefix, task.out_prefix, task.strict
    visited = set(task.visited)
    queue = list(task.frontier)
    by_source: dict[State, tuple[Transition, ...]] = {}
    labels: dict[State, frozenset[str]] = {}
    new_entries: dict = {}
    claimed: list = []
    handoffs: list = []
    explored = hits = misses = 0
    while queue:
        joint = queue.pop()
        explored += 1
        entry = cache.get(joint)
        if entry is None:
            edges, targets = _joint_edges(joint, components, in_prefix, out_prefix, strict)
            label = frozenset().union(
                *(c.labels(local) for c, local in zip(components, joint))
            )
            entry = (edges, targets, label)
            new_entries[joint] = entry
            misses += 1
        else:
            edges, targets, label = entry
            hits += 1
        if edges:
            by_source[joint] = edges
        labels[joint] = label
        for target in targets:
            if shards > 1 and shard_of(target, shards) != shard:
                handoffs.append(target)
            elif target not in visited:
                visited.add(target)
                claimed.append(target)
                queue.append(target)
    return _ShardDelta(
        shard=shard,
        states_explored=explored,
        by_source=by_source,
        labels=labels,
        new_entries=new_entries,
        claimed=tuple(claimed),
        handoffs=tuple(handoffs),
        hits=hits,
        misses=misses,
    )


@dataclass(frozen=True)
class _DenseProductShared:
    """Per-update read-only context the dense shard workers derive from.

    Published through the module global :data:`_DENSE_PRODUCT_SHARED`
    *before* the worker crew is claimed: thread and inline workers read
    it directly, and a forked process crew inherits it by copy-on-write
    at fork time — the components are shipped to the children exactly
    once per update instead of being pickled into every round's tasks.
    """

    components: tuple
    in_prefix: tuple
    out_prefix: tuple
    strict: bool


_DENSE_PRODUCT_SHARED: _DenseProductShared | None = None


@dataclass(frozen=True)
class _DenseShardTask:
    """One shard's derivations for one BFS level (flat and picklable).

    Only *misses* travel: the parent classifies every frontier id
    against its live entry table before dispatch, so a worker's whole
    job is the expensive part — re-deriving product edges — and a level
    whose frontier is fully cached never leaves the parent at all.
    """

    shard: int
    #: (interned id, joint tuple) pairs in frontier order — the joint
    #: travels with the id because forked children cannot resolve ids
    #: interned after their snapshot was taken.
    misses: tuple


@dataclass(frozen=True)
class _DenseShardDelta:
    """What one dense shard worker derived in one BFS level."""

    shard: int
    #: (interned id, edges, target joints, label) in task order
    derived: tuple


def _explore_dense_shard(task: _DenseShardTask) -> _DenseShardDelta:
    """Derive the product edges of one shard's frontier misses.

    A pure function of the task and the fork/thread-shared per-update
    context: every joint state is derived by exactly its ``id % K``
    owner, so the per-state results are identical to the sequential
    exploration regardless of shard count, strategy, or scheduling.
    """
    shared = _DENSE_PRODUCT_SHARED
    components = shared.components
    in_prefix, out_prefix, strict = shared.in_prefix, shared.out_prefix, shared.strict
    derived = []
    for sid, joint in task.misses:
        edges, targets = _joint_edges(joint, components, in_prefix, out_prefix, strict)
        label = frozenset().union(
            *(c.labels(local) for c, local in zip(components, joint))
        )
        derived.append((sid, edges, targets, label))
    return _DenseShardDelta(shard=task.shard, derived=tuple(derived))


class IncrementalProduct:
    """Reusable n-ary synchronous product (Definition 3, folded left).

    Joint states are flat tuples ``(s₁, …, sₙ)`` of component-local
    states — exactly the state shape of :func:`compose` for ``n = 2``
    and :func:`compose_all` for larger ``n``.  Outgoing edges of a joint
    state are cached between updates and reused whenever every local
    state is clean; dirty locals invalidate every cached joint that
    mentions them *before* the re-exploration, so a state that is
    temporarily unreachable can never resurrect stale edges.

    With ``validate=True`` every update is cross-checked against a full
    recompose; a mismatch (which would indicate a bug in the fold) makes
    the product adopt the from-scratch result and flush its cache.

    With ``parallelism=K > 1`` the re-exploration is split into ``K``
    shards.  The *dense* exploration (``dense=True``, the default above
    the dense state floor or under ``REPRO_DENSE_PRODUCT``) interns
    every joint state into a delta-extendable
    :class:`~repro.automata.interning.StateInterner` as the BFS
    discovers it: ownership is plain ``id % K``, the visited set is a
    byte-flag buffer, frontiers are ``array('I')`` id batches, and the
    edge cache is an id-indexed entry list.  Rounds are BFS levels —
    the parent classifies each level's frontier against the live entry
    table and ships only the *misses* (as flat ``(id, joint)`` batches)
    to a per-update :class:`~repro.automata.sharding.ShardCrew`, whose
    forked workers inherit the components once at fork time instead of
    pickling cache slices per round.  The *legacy* exploration
    (``dense=False``) keeps the dict cache keyed by joint tuples with
    crc32-of-repr ownership and within-shard frontier chaining.  Either
    way, deltas merge in shard order and every per-state result is
    computed by exactly one owner shard, so the merged product — and
    every counter except the per-shard breakdown — is bit-identical to
    the sequential exploration for every shard count, strategy, and
    scheduling order.
    """

    def __init__(
        self,
        *,
        semantics: Semantics = "strict",
        validate: bool = False,
        parallelism: int | None = None,
        strategy: str | None = None,
        dense: bool | None = None,
        pool: WorkerPool | None = None,
        tracer=None,
    ):
        if semantics not in ("strict", "open"):
            raise CompositionError(f"unknown composition semantics {semantics!r}")
        self.semantics: Semantics = semantics
        self.validate = validate
        self.parallelism = resolve_parallelism(parallelism)
        self.strategy = check_strategy(strategy)
        self.dense = dense
        self.fallbacks = 0
        self._pool = pool if pool is not None else get_pool()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: joint state -> (sorted outgoing edges, unique targets, labels)
        self._cache: dict[tuple, tuple[tuple[Transition, ...], tuple, frozenset[str]]] = {}
        #: dense twin of ``_cache``: id -> (edges, array('I') target ids,
        #: labels) — ``None`` marks un-derived ids; kept aligned with the
        #: interner (``len(_entries) == len(_interner)``) at all times.
        self._interner: StateInterner | None = None
        self._entries: list = []
        self._live_entries = 0
        self._dense_active: bool | None = None
        self._reachable_mask = 0
        self._arity: int | None = None

    @property
    def dense_states(self) -> int:
        """Interned joint states (0 unless the dense regime is active).

        The interner itself survives a dense→legacy flip (ids are never
        reassigned), but the counter reports 0 while legacy mode is
        active so it always matches the ``ProductUpdate`` fields.
        """
        if not self._dense_active or self._interner is None:
            return 0
        return len(self._interner)

    @property
    def bitset_words(self) -> int:
        """64-bit words a reachability bitset over the ids occupies."""
        return (self.dense_states + 63) // 64

    @property
    def reachable_mask(self) -> int:
        """Packed bitset of the last dense update's reachable ids."""
        return self._reachable_mask

    def _set_mode(self, dense: bool) -> None:
        """Activate one cache regime, migrating entries on a flip.

        The toggle re-resolves per update (the environment or the size
        heuristic may change between learning steps), and warm entries
        are too valuable to drop on a flip: both directions convert the
        cache wholesale.  Ids are never reassigned — the interner
        outlives a dense→legacy→dense round trip, so warm-start
        structures stay directly comparable.
        """
        if self._dense_active == dense:
            return
        if dense:
            if self._interner is None:
                self._interner = StateInterner()
                self._entries = []
            interner, entries = self._interner, self._entries
            if self._cache:
                batch = list(self._cache)
                for _, targets, _ in self._cache.values():
                    batch.extend(targets)
                added = interner.extend(batch)
                if added:
                    entries.extend([None] * added)
                id_of = interner.id_of
                for joint, (edges, targets, label) in self._cache.items():
                    entries[id_of(joint)] = (
                        edges,
                        array("I", (id_of(t) for t in targets)),
                        label,
                    )
                self._live_entries = len(self._cache)
                self._cache = {}
        elif self._dense_active:
            interner, entries = self._interner, self._entries
            resolve = interner.resolve
            for sid, entry in enumerate(entries):
                if entry is None:
                    continue
                edges, tids, label = entry
                self._cache[resolve(sid)] = (
                    edges,
                    tuple(resolve(t) for t in tids),
                    label,
                )
            self._entries = [None] * len(interner)
            self._live_entries = 0
        self._dense_active = dense

    def _check_composable(self, components: Sequence[Automaton]) -> None:
        for position, right in enumerate(components[1:], start=1):
            for left in components[:position]:
                if not composable(left, right):
                    raise CompositionError(
                        f"{left.name!r} and {right.name!r} are not composable: "
                        f"shared inputs {sorted(left.inputs & right.inputs)}, "
                        f"shared outputs {sorted(left.outputs & right.outputs)}"
                    )

    def _joint_bound(self) -> int:
        """Capped joint state-space bound: the product of component sizes."""
        bound = 1
        for size in self._component_sizes:
            bound *= max(size, 1)
            if bound > 10 * FLAT_PROCESS_WORKLOAD_FLOOR:
                break  # already clearly past every threshold we care about
        return bound

    def _select_strategy(self, stale: int, initial: int, dense: bool) -> str:
        """Pick an execution strategy from the estimated re-exploration.

        The workload is what the BFS will have to *recompute*: the
        invalidated cache entries plus the initial frontier on warm
        updates, or (capped) the full joint state-space bound on the
        first exploration of an empty cache.  Dense explorations pass
        ``flat=True`` — their shard payloads are id arrays, so the
        forked crew engages at the much lower flat workload floor.
        """
        if self.strategy is not None:
            return self.strategy if self.parallelism > 1 else "sequential"
        if self._cache or self._live_entries:
            workload = stale + initial
        else:
            workload = self._joint_bound()
        return select_strategy(workload, self.parallelism, flat=dense)

    def update(
        self,
        components: Sequence[Automaton],
        dirty_locals: Sequence[frozenset[State]],
        *,
        name: str | None = None,
    ) -> ProductUpdate:
        with self.tracer.span("product.update", arity=len(components)) as span:
            update = self._update(components, dirty_locals, name=name)
            span.set(hits=update.hits, misses=update.misses)
        return update

    def _update(
        self,
        components: Sequence[Automaton],
        dirty_locals: Sequence[frozenset[State]],
        *,
        name: str | None = None,
    ) -> ProductUpdate:
        components = list(components)
        if len(components) < 2:
            raise CompositionError("IncrementalProduct needs at least two components")
        if len(dirty_locals) != len(components):
            raise CompositionError("dirty_locals must align with components")
        if self._arity is None:
            self._arity = len(components)
        elif self._arity != len(components):
            raise CompositionError(
                f"IncrementalProduct was built for {self._arity} components, got {len(components)}"
            )
        self._check_composable(components)

        self._component_sizes = [len(c.states) for c in components]
        dense = resolve_dense_product(self.dense, state_count=self._joint_bound())
        self._set_mode(dense)

        dirty_sets = [frozenset(d) for d in dirty_locals]
        stale_count = 0
        if any(dirty_sets):
            if dense:
                entries = self._entries
                resolve = self._interner.resolve
                arity = range(len(dirty_sets))
                for sid in range(len(entries)):
                    if entries[sid] is None:
                        continue
                    joint = resolve(sid)
                    if any(joint[k] in dirty_sets[k] for k in arity):
                        entries[sid] = None
                        stale_count += 1
                self._live_entries -= stale_count
            else:
                stale = [
                    joint
                    for joint in self._cache
                    if any(joint[k] in dirty_sets[k] for k in range(len(dirty_sets)))
                ]
                stale_count = len(stale)
                for joint in stale:
                    del self._cache[joint]

        in_prefix: list[frozenset[str]] = [frozenset()]
        out_prefix: list[frozenset[str]] = [frozenset()]
        for component in components[:-1]:
            in_prefix.append(in_prefix[-1] | component.inputs)
            out_prefix.append(out_prefix[-1] | component.outputs)

        initial = [tuple(combo) for combo in iproduct(*(sorted(c.initial, key=repr) for c in components))]
        strategy = self._select_strategy(stale_count, len(initial), dense)
        shards = self.parallelism
        strict = self.semantics == "strict"

        explore = self._explore_dense if dense else self._explore
        seen, by_source, labels, count, reports = explore(
            components, initial, in_prefix, out_prefix, strict, shards, strategy
        )
        hits = sum(report.hits for report in reports)
        misses = sum(report.misses for report in reports)
        dirty_joints: frozenset[State] = frozenset().union(
            *(report.dirty_states for report in reports)
        )

        inputs = frozenset().union(*(c.inputs for c in components))
        outputs = frozenset().union(*(c.outputs for c in components))
        automaton = Automaton._assemble(
            states=frozenset(seen),
            inputs=inputs,
            outputs=outputs,
            by_source=by_source,
            transition_count=count,
            initial=initial,
            labels=labels,
            name=name if name is not None else " || ".join(c.name for c in components),
        )
        fell_back = False
        if self.validate:
            reference = self._full_recompose(components, name=automaton.name)
            if automaton != reference:
                self.fallbacks += 1
                fell_back = True
                self._cache.clear()
                if self._interner is not None:
                    self._entries = [None] * len(self._interner)
                    self._live_entries = 0
                automaton = reference
                dirty_joints = frozenset(reference.states)
        return ProductUpdate(
            automaton=automaton,
            dirty_states=dirty_joints,
            hits=hits,
            misses=misses,
            fell_back=fell_back,
            shards=reports,
            dense=dense,
            dense_states=self.dense_states if dense else 0,
            bitset_words=(self.dense_states + 63) // 64 if dense else 0,
        )

    def _explore(
        self,
        components: list[Automaton],
        initial: list[tuple],
        in_prefix: list[frozenset[str]],
        out_prefix: list[frozenset[str]],
        strict: bool,
        shards: int,
        strategy: str,
    ) -> tuple[set, dict, dict, int, tuple[ShardReport, ...]]:
        """Sharded BFS to the global fixpoint; merge deltas in shard order."""
        cache = self._cache
        visited: list[set] = [set() for _ in range(shards)]
        frontiers: list[list] = [[] for _ in range(shards)]
        for joint in initial:
            k = shard_of(joint, shards)
            if joint not in visited[k]:
                visited[k].add(joint)
                frontiers[k].append(joint)

        # Forked processes cannot see the parent's cache, so ship each
        # worker its own shard's slice; threads and inline workers read
        # the shared dict directly (it is only written between rounds).
        if strategy == "process" and shards > 1:
            slices: list[dict] = [{} for _ in range(shards)]
            for joint, entry in cache.items():
                slices[shard_of(joint, shards)][joint] = entry
        else:
            slices = [cache] * shards

        by_source: dict[State, tuple[Transition, ...]] = {}
        labels: dict[State, frozenset[str]] = {}
        count = 0
        explored = [0] * shards
        hits = [0] * shards
        misses = [0] * shards
        handoffs = [0] * shards
        conflicts = [0] * shards
        dirty: list[set] = [set() for _ in range(shards)]
        adopt = shards == 1  # single shard: adopt the delta maps wholesale

        components_tuple = tuple(components)
        in_prefix_tuple = tuple(in_prefix)
        out_prefix_tuple = tuple(out_prefix)
        tracer = self.tracer
        round_index = 0
        runner = _explore_shard
        if tracer.enabled and strategy != "process" and shards > 1:
            # Workers time themselves and report on their shard's track.
            # Forked processes cannot reach this tracer, so their rounds
            # go unrecorded (only 200k+-state explorations take that path).
            # A single shard stays on the main track: emitting a
            # `product/shard-0` swimlane for K=1 runs only duplicated
            # the exploration time as a zero-information track in every
            # trace summary.
            round_box = [0]

            def runner(task: _ShardTask) -> _ShardDelta:
                begin = time.perf_counter()
                delta = _explore_shard(task)
                tracer.record(
                    "product.shard_round",
                    track=f"product/shard-{task.shard}",
                    start=begin,
                    duration=time.perf_counter() - begin,
                    round=round_box[0],
                )
                return delta

        while any(frontiers):
            tasks = [
                _ShardTask(
                    shard=k,
                    shards=shards,
                    frontier=tuple(frontiers[k]),
                    visited=frozenset(visited[k]) if strategy == "process" else visited[k],
                    components=components_tuple,
                    in_prefix=in_prefix_tuple,
                    out_prefix=out_prefix_tuple,
                    strict=strict,
                    cache=slices[k],
                )
                for k in range(shards)
                if frontiers[k]
            ]
            if tracer.enabled and strategy != "process" and shards > 1:
                round_box[0] = round_index
            deltas = self._pool.map(strategy, runner, tasks, workers=shards)
            # Merge in shard order (map preserves task order): each joint
            # state is owned by exactly one shard, so the merged maps are
            # conflict-free and their contents scheduling-independent.
            with tracer.span("product.merge", round=round_index, shards=len(deltas)):
                for delta in deltas:
                    k = delta.shard
                    cache.update(delta.new_entries)
                    if slices[k] is not cache:
                        slices[k].update(delta.new_entries)
                    if adopt and not by_source:
                        by_source = delta.by_source
                        labels = delta.labels
                    else:
                        by_source.update(delta.by_source)
                        labels.update(delta.labels)
                    count += sum(len(edges) for edges in delta.by_source.values())
                    visited[k].update(delta.claimed)
                    dirty[k].update(delta.new_entries)
                    explored[k] += delta.states_explored
                    hits[k] += delta.hits
                    misses[k] += delta.misses
                    handoffs[k] += len(delta.handoffs)
                next_frontiers: list[list] = [[] for _ in range(shards)]
                for delta in deltas:
                    for target in delta.handoffs:
                        k2 = shard_of(target, shards)
                        if target in visited[k2]:
                            conflicts[k2] += 1
                        else:
                            visited[k2].add(target)
                            next_frontiers[k2].append(target)
                frontiers = next_frontiers
            round_index += 1

        seen: set = set().union(*visited) if shards > 1 else visited[0]
        reports = tuple(
            ShardReport(
                shard=k,
                states_explored=explored[k],
                hits=hits[k],
                misses=misses[k],
                handoffs=handoffs[k],
                merge_conflicts=conflicts[k],
                dirty_states=frozenset(dirty[k]),
            )
            for k in range(shards)
        )
        return seen, by_source, labels, count, reports

    def _explore_dense_chained(
        self,
        components: list[Automaton],
        initial: list[tuple],
        in_prefix: list[frozenset[str]],
        out_prefix: list[frozenset[str]],
        strict: bool,
        shards: int,
    ) -> tuple[Iterable, dict, dict, int, tuple[ShardReport, ...]]:
        """One chained id-space BFS with analytic shard attribution.

        The fast path for the ``sequential`` strategy at every K: no
        crew, no rounds, no per-level allocations — a single queue walk
        that evaluates ``id % K`` only to *attribute* work (explored,
        hits, misses, handoffs, conflicts, dirty) to its owner shard.
        Because the BFS pops states in exactly the order the round
        protocol's frontiers enumerate them, the global emission
        sequence — and hence every published counter — is bit-identical
        to the crew-driven exploration; K>1 costs two modulo operations
        per edge over K=1.  Warm all-hit updates reduce to a single
        pass over the cached entry table.
        """
        interner = self._interner
        entries = self._entries
        # Direct slot access, same idiom as DenseGraph.from_successors:
        # this loop is the product hot path and a method call per popped
        # state (let alone per target) is measurable against it.
        ids = interner._ids
        store = interner._states
        before = len(store)
        initial_ids = interner.intern_ids(initial)
        added = len(store) - before
        if added:
            entries.extend([None] * added)

        visited = bytearray(len(store))
        queue = array("I")
        queue_append = queue.append
        for sid in initial_ids:
            if not visited[sid]:
                visited[sid] = 1
                queue_append(sid)

        explored = [0] * shards
        hits = [0] * shards
        misses = [0] * shards
        handoffs = [0] * shards
        conflicts = [0] * shards
        dirty: list[set] = [set() for _ in range(shards)]

        # Every visited id is enqueued exactly once and the queue drains
        # to the fixpoint, so the pop loop sees each reachable state
        # exactly once — the result maps are built inline instead of by
        # a second resolve-everything pass over the flag buffer.  The
        # reachable-state set is exactly the label map's key view.
        by_source: dict[State, tuple[Transition, ...]] = {}
        labels: dict[State, frozenset[str]] = {}
        count = 0
        live = 0
        index = 0
        ids_get = ids.get
        entries_append = entries.append
        store_append = store.append
        visited_append = visited.append
        while index < len(queue):
            sid = queue[index]
            index += 1
            k = sid % shards if shards > 1 else 0
            explored[k] += 1
            entry = entries[sid]
            if entry is None:
                state = store[sid]
                misses[k] += 1
                dirty[k].add(state)
                edges, targets = _joint_edges(
                    state, components, in_prefix, out_prefix, strict
                )
                label = frozenset().union(
                    *(c.labels(local) for c, local in zip(components, state))
                )
                # Interning and routing fused into one pass over the
                # (already deduplicated) targets: a state fresh to the
                # interner is by construction unvisited, so it is
                # claimed and enqueued without a flag probe.
                tids = array("I")
                tids_append = tids.append
                if shards == 1:
                    for target in targets:
                        tid = ids_get(target)
                        if tid is None:
                            tid = len(store)
                            ids[target] = tid
                            store_append(target)
                            entries_append(None)
                            visited_append(1)
                            queue_append(tid)
                        elif not visited[tid]:
                            visited[tid] = 1
                            queue_append(tid)
                        tids_append(tid)
                else:
                    for target in targets:
                        tid = ids_get(target)
                        if tid is None:
                            tid = len(store)
                            ids[target] = tid
                            store_append(target)
                            entries_append(None)
                            visited_append(0)
                        tids_append(tid)
                        owner = tid % shards
                        if owner != k:
                            handoffs[k] += 1
                        if visited[tid]:
                            if owner != k:
                                conflicts[owner] += 1
                        else:
                            visited[tid] = 1
                            queue_append(tid)
                entries[sid] = (edges, tids, label)
                live += 1
            else:
                hits[k] += 1
                edges, tids, label = entry
                state = store[sid]
                if shards == 1:
                    for tid in tids:
                        if not visited[tid]:
                            visited[tid] = 1
                            queue_append(tid)
                else:
                    for tid in tids:
                        owner = tid % shards
                        if owner != k:
                            handoffs[k] += 1
                        if visited[tid]:
                            if owner != k:
                                conflicts[owner] += 1
                        else:
                            visited[tid] = 1
                            queue_append(tid)
            if edges:
                by_source[state] = edges
                count += len(edges)
            labels[state] = label
        self._live_entries += live
        self._reachable_mask = mask_of_flags(visited)
        reports = tuple(
            ShardReport(
                shard=k,
                states_explored=explored[k],
                hits=hits[k],
                misses=misses[k],
                handoffs=handoffs[k],
                merge_conflicts=conflicts[k],
                dirty_states=frozenset(dirty[k]),
            )
            for k in range(shards)
        )
        return labels.keys(), by_source, labels, count, reports

    def _explore_dense(
        self,
        components: list[Automaton],
        initial: list[tuple],
        in_prefix: list[frozenset[str]],
        out_prefix: list[frozenset[str]],
        strict: bool,
        shards: int,
        strategy: str,
    ) -> tuple[set, dict, dict, int, tuple[ShardReport, ...]]:
        """Level-synchronized id-space BFS; merge deltas in shard order.

        Rounds are BFS levels for *every* shard count and strategy —
        workers never chain within a round, so the round structure (and
        with it every scheduling-independent counter) is identical at
        K=1 and K=8.  Fresh joint states are interned at merge time,
        per delta in shard order, in discovery order — every source of
        that order (the frontier, the tasks, ``_joint_edges``'s walk of
        canonical transition slices) is deterministic, so id assignment
        is a pure function of the exploration history, independent of
        the hash seed and of worker scheduling.  Emissions route in
        frontier order (shard by shard, state by state, target by
        target) against the byte-flag visited buffer; a cross-shard
        arrival at a claimed id is counted against the owner, exactly
        like the legacy merge protocol.

        The ``sequential`` strategy takes the chained fast path
        instead: one queue-driven BFS with *analytic* shard attribution
        (``id % K`` evaluated while counting, not while scheduling).
        The emission sequence — (source, target) pairs in BFS order —
        is identical under both schedules, so every published counter
        matches the round protocol's bit for bit, while K>1 costs
        nothing but the modulo bookkeeping.
        """
        if strategy == "sequential":
            return self._explore_dense_chained(
                components, initial, in_prefix, out_prefix, strict, shards
            )
        global _DENSE_PRODUCT_SHARED
        interner = self._interner
        entries = self._entries
        added = interner.extend(initial)
        if added:
            entries.extend([None] * added)

        visited = bytearray(len(interner))
        id_of = interner.id_of
        resolve = interner.resolve
        frontier = array("I")
        for joint in initial:
            sid = id_of(joint)
            if not visited[sid]:
                visited[sid] = 1
                frontier.append(sid)

        explored = [0] * shards
        hits = [0] * shards
        misses = [0] * shards
        handoffs = [0] * shards
        conflicts = [0] * shards
        dirty: list[set] = [set() for _ in range(shards)]

        tracer = self.tracer
        runner = _explore_dense_shard
        traced = tracer.enabled and strategy != "process" and shards > 1
        if traced:
            # Same span contract as the legacy path: workers time
            # themselves onto their shard's track; forked crews cannot
            # reach this tracer, and K=1 stays on the main track.
            round_box = [0]

            def runner(task: _DenseShardTask) -> _DenseShardDelta:
                begin = time.perf_counter()
                delta = _explore_dense_shard(task)
                tracer.record(
                    "product.shard_round",
                    track=f"product/shard-{task.shard}",
                    start=begin,
                    duration=time.perf_counter() - begin,
                    round=round_box[0],
                )
                return delta

        round_index = 0
        _DENSE_PRODUCT_SHARED = _DenseProductShared(
            components=tuple(components),
            in_prefix=tuple(in_prefix),
            out_prefix=tuple(out_prefix),
            strict=strict,
        )
        try:
            with self._pool.crew(strategy, shards) as crew:
                while frontier:
                    # Partition the level by id ownership and classify
                    # against the live entry table: only misses travel.
                    parts: list[array] = [array("I") for _ in range(shards)]
                    miss_lists: list[list] = [[] for _ in range(shards)]
                    for sid in frontier:
                        k = sid % shards
                        parts[k].append(sid)
                        if entries[sid] is None:
                            miss_lists[k].append((sid, resolve(sid)))
                    tasks = [
                        _DenseShardTask(shard=k, misses=tuple(miss_lists[k]))
                        for k in range(shards)
                        if miss_lists[k]
                    ]
                    if traced:
                        round_box[0] = round_index
                    deltas = crew.map(runner, tasks) if tasks else []
                    with tracer.span(
                        "product.merge", round=round_index, shards=len(deltas)
                    ):
                        for delta in deltas:
                            before = len(interner)
                            for sid, edges, targets, label in delta.derived:
                                entries[sid] = (
                                    edges,
                                    array("I", interner.intern_ids(targets)),
                                    label,
                                )
                            added = len(interner) - before
                            if added:
                                entries.extend([None] * added)
                                visited.extend(bytes(added))
                            self._live_entries += len(delta.derived)
                        next_frontier = array("I")
                        for k in range(shards):
                            part = parts[k]
                            explored[k] += len(part)
                            miss_count = len(miss_lists[k])
                            misses[k] += miss_count
                            hits[k] += len(part) - miss_count
                            dirty[k].update(joint for _, joint in miss_lists[k])
                            if shards == 1:
                                for sid in part:
                                    for tid in entries[sid][1]:
                                        if not visited[tid]:
                                            visited[tid] = 1
                                            next_frontier.append(tid)
                                continue
                            for sid in part:
                                for tid in entries[sid][1]:
                                    owner = tid % shards
                                    if owner != k:
                                        handoffs[k] += 1
                                    if visited[tid]:
                                        if owner != k:
                                            conflicts[owner] += 1
                                        continue
                                    visited[tid] = 1
                                    next_frontier.append(tid)
                        frontier = next_frontier
                    round_index += 1
        finally:
            _DENSE_PRODUCT_SHARED = None

        seen: set = set()
        by_source: dict[State, tuple[Transition, ...]] = {}
        labels: dict[State, frozenset[str]] = {}
        count = 0
        for sid, flag in enumerate(visited):
            if not flag:
                continue
            state = resolve(sid)
            seen.add(state)
            edges, _, label = entries[sid]
            if edges:
                by_source[state] = edges
                count += len(edges)
            labels[state] = label
        self._reachable_mask = mask_of_flags(visited)
        reports = tuple(
            ShardReport(
                shard=k,
                states_explored=explored[k],
                hits=hits[k],
                misses=misses[k],
                handoffs=handoffs[k],
                merge_conflicts=conflicts[k],
                dirty_states=frozenset(dirty[k]),
            )
            for k in range(shards)
        )
        return seen, by_source, labels, count, reports

    def _full_recompose(self, components: Sequence[Automaton], *, name: str) -> Automaton:
        # parallelism=1 pins the reference to the sequential from-scratch
        # fold: the validate cross-check must stay independent of the
        # sharded machinery (and of REPRO_PARALLELISM) to catch bugs in it.
        if len(components) == 2:
            return compose(
                components[0],
                components[1],
                semantics=self.semantics,
                name=name,
                parallelism=1,
            )
        return compose_all(components, semantics=self.semantics, name=name, parallelism=1)


# -------------------------------------------------------------------- verifier


@dataclass
class StepStats:
    """Counters for one :meth:`IncrementalVerifier.step`."""

    closure_groups_reused: int = 0
    closure_groups_rebuilt: int = 0
    product_hits: int = 0
    product_misses: int = 0
    dirty_states: int = 0
    affected_states: int = 0
    fell_back: bool = False
    #: shard count of the product exploration (0 when no product ran)
    product_shards: int = 0
    #: joint states explored per shard, in shard order
    shard_states_explored: tuple[int, ...] = ()
    #: cross-shard frontier handoffs emitted, summed over shards
    shard_handoffs: int = 0
    #: handoffs that arrived at an already-claimed target, summed over shards
    shard_merge_conflicts: int = 0
    #: interned joint states after the product update (0 on the legacy path)
    product_dense_states: int = 0
    #: 64-bit words of the packed reachable bitset (0 on the legacy path)
    product_bitset_words: int = 0


@dataclass(frozen=True)
class VerificationStep:
    """Everything one iteration of the loop needs from the verifier."""

    closures: tuple[Automaton, ...]
    composed: Automaton
    checker: "ModelChecker"
    stats: StepStats = field(compare=False)


class IncrementalVerifier:
    """The incremental verification engine behind ``incremental=True``.

    One instance accompanies one synthesis run; :meth:`step` consumes
    the current learned model(s) and yields closures, the composed
    product, and a warm-started checker that together are equal — as
    automata and as verdicts — to what the from-scratch pipeline
    (:func:`chaotic_closure` + :func:`compose`/:func:`compose_all` +
    cold :class:`ModelChecker`) produces.
    """

    def __init__(
        self,
        *,
        context: Automaton | None,
        universes: Sequence[InteractionUniverse],
        semantics: Semantics = "strict",
        deterministic_implementation: bool = True,
        validate: bool = False,
        parallelism: int | None = None,
        strategy: str | None = None,
        checker_parallelism: int | None = None,
        dense: bool | None = None,
        dense_product: bool | None = None,
        product_strategy: str | None = None,
        tracer=None,
    ):
        if not universes:
            raise ModelError("IncrementalVerifier needs at least one legacy universe")
        self.context = context
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.dense = dense
        self.dense_product = dense_product
        # The product-specific strategy knob (or REPRO_PRODUCT_STRATEGY)
        # wins over the generic strategy= for the product exploration.
        self.product_strategy = resolve_product_strategy(product_strategy)
        self.parallelism = resolve_parallelism(parallelism)
        # The checker follows the product's shard count unless overridden
        # (explicitly or via REPRO_CHECKER_PARALLELISM): one knob shards
        # the whole verification step.
        self.checker_parallelism = resolve_checker_parallelism(
            checker_parallelism, fallback=self.parallelism
        )
        self.strategy = check_strategy(strategy)
        self._closure_caches = [
            ClosureCache(
                universe,
                deterministic_implementation=deterministic_implementation,
                parallelism=self.parallelism,
                strategy=strategy,
                tracer=self.tracer,
            )
            for universe in universes
        ]
        arity = (1 if context is not None else 0) + len(universes)
        self._product = (
            IncrementalProduct(
                semantics=semantics,
                validate=validate,
                parallelism=self.parallelism,
                strategy=(
                    self.product_strategy
                    if self.product_strategy is not None
                    else strategy
                ),
                dense=dense_product,
                tracer=self.tracer,
            )
            if arity > 1
            else None
        )
        self._checker: "ModelChecker | None" = None

    def step(
        self,
        models: Sequence[IncompleteAutomaton],
        *,
        closure_names: Sequence[str] | None = None,
        name: str | None = None,
    ) -> VerificationStep:
        with self.tracer.span("verify.step", models=len(models)):
            return self._step(models, closure_names=closure_names, name=name)

    def _step(
        self,
        models: Sequence[IncompleteAutomaton],
        *,
        closure_names: Sequence[str] | None = None,
        name: str | None = None,
    ) -> VerificationStep:
        from ..logic.checker import ModelChecker

        if len(models) != len(self._closure_caches):
            raise ModelError(
                f"expected {len(self._closure_caches)} models, got {len(models)}"
            )
        stats = StepStats()
        updates = []
        for position, (cache, model) in enumerate(zip(self._closure_caches, models)):
            closure_name = closure_names[position] if closure_names is not None else None
            update = cache.update(model, name=closure_name)
            stats.closure_groups_reused += update.reused_groups
            stats.closure_groups_rebuilt += update.rebuilt_groups
            updates.append(update)

        if self._product is None:
            composed = updates[0].closure
            dirty = updates[0].dirty_states
        else:
            components: list[Automaton] = []
            dirty_locals: list[frozenset[State]] = []
            if self.context is not None:
                components.append(self.context)
                dirty_locals.append(frozenset())
            for update in updates:
                components.append(update.closure)
                dirty_locals.append(update.dirty_states)
            product = self._product.update(components, dirty_locals, name=name)
            composed = product.automaton
            dirty = product.dirty_states
            stats.product_hits = product.hits
            stats.product_misses = product.misses
            stats.fell_back = product.fell_back
            stats.product_shards = len(product.shards)
            stats.shard_states_explored = tuple(
                report.states_explored for report in product.shards
            )
            stats.shard_handoffs = sum(report.handoffs for report in product.shards)
            stats.shard_merge_conflicts = sum(
                report.merge_conflicts for report in product.shards
            )
            stats.product_dense_states = product.dense_states
            stats.product_bitset_words = product.bitset_words

        stats.dirty_states = len(dirty)
        checker = ModelChecker(
            composed,
            warm_from=self._checker,
            dirty_states=dirty,
            parallelism=self.checker_parallelism,
            strategy=self.strategy,
            dense=self.dense,
            tracer=self.tracer,
        )
        self._checker = checker
        stats.affected_states = checker.stats.affected_states
        return VerificationStep(
            closures=tuple(update.closure for update in updates),
            composed=composed,
            checker=checker,
            stats=stats,
        )
