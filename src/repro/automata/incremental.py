"""Incremental maintenance of closures, products, and checkers (§4.4).

The synthesis loop of §4 re-verifies ``M_a^c ∥ chaos(M_l^i)`` after every
learning step.  Each step touches only a handful of states of the
learned model ``M_l^i`` — one new transition, a few refusals — yet the
seed implementation rebuilt the chaotic closure, re-explored the full
product state space, and re-ran every fixpoint from scratch, making the
loop quadratic in practice.  This module carries all three structures
across iterations:

:class:`ClosureCache`
    Definition 9's closure decomposes per base state: the transitions
    leaving ``(s,0)``/``(s,1)`` depend only on ``s``'s local knowledge
    (outgoing transitions, refusals, labels).  The cache re-derives the
    transition group of exactly the states whose knowledge changed and
    reports them as the *dirty* closure states.

:class:`IncrementalProduct`
    The n-ary synchronous product re-explored from the initial joint
    states, reusing the cached outgoing edges of every joint state whose
    component-local states are all clean.  The matching discipline of
    Definition 3 depends only on the components' *static* signal
    alphabets, so a left fold over the component transitions reproduces
    :func:`~repro.automata.composition.compose` /
    :func:`~repro.automata.composition.compose_all` exactly — which the
    optional ``validate`` mode re-checks against a full recompose,
    falling back to the from-scratch result on any mismatch.

:class:`IncrementalVerifier`
    Ties both together with the model checker's warm start
    (:class:`~repro.logic.checker.ModelChecker` with ``warm_from``):
    dirty closure states make dirty product states make checker seeds,
    and everything outside the region that can reach a seed keeps its
    previous satisfaction sets.

Soundness of the dirtiness propagation: a joint state's outgoing edges
are a function of its component-local transition groups, so a joint
state all of whose locals kept their groups verbatim has verbatim-equal
edges and labels; the checker then only needs seeds for the remaining
(changed or new) product states.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from itertools import product as iproduct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..logic.checker import ModelChecker

from ..errors import CompositionError, ModelError
from .automaton import Automaton, State, Transition
from .chaos import (
    CHAOS_PROPOSITION,
    S_ALL,
    S_DELTA,
    ClosureState,
    chaotic_core_transitions,
    closure_state_transitions,
)
from .composition import Semantics, compose, compose_all, composable
from .incomplete import IncompleteAutomaton
from .interaction import InteractionUniverse

__all__ = [
    "ClosureUpdate",
    "ClosureCache",
    "ProductUpdate",
    "IncrementalProduct",
    "VerificationStep",
    "IncrementalVerifier",
]


# --------------------------------------------------------------------- closure


@dataclass(frozen=True)
class ClosureUpdate:
    """One incremental closure step."""

    closure: Automaton
    dirty_states: frozenset[State]  #: closure states whose edges/labels changed
    reused_groups: int
    rebuilt_groups: int


class ClosureCache:
    """Maintains ``chaos(M_l^i)`` across learning steps of one model.

    ``update`` produces an automaton equal (up to name) to
    :func:`~repro.automata.chaos.chaotic_closure` of the given model,
    rebuilding only the per-state transition groups whose local
    knowledge — outgoing transitions, refusals, labels — changed since
    the previous call.
    """

    def __init__(
        self,
        universe: InteractionUniverse,
        *,
        deterministic_implementation: bool = True,
    ):
        self.universe = universe
        self.deterministic_implementation = deterministic_implementation
        self._core = tuple(sorted(chaotic_core_transitions(universe), key=Transition.sort_key))
        #: per closure-source-state outgoing transitions, each slice sorted
        #: by :meth:`Transition.sort_key` (canonical per-source order).
        self._groups: dict[State, dict[State, tuple[Transition, ...]]] = {}
        self._group_sizes: dict[State, int] = {}
        self._signatures: dict[State, tuple] = {}
        self._previous_initial: frozenset[State] | None = None

    def _signature(self, incomplete: IncompleteAutomaton, state: State) -> tuple:
        return (
            incomplete.automaton.transitions_from(state),
            incomplete.refused(state),
            incomplete.labels(state),
        )

    def update(self, incomplete: IncompleteAutomaton, *, name: str | None = None) -> ClosureUpdate:
        if (
            self.universe.inputs != incomplete.inputs
            or self.universe.outputs != incomplete.outputs
        ):
            raise ModelError(
                f"universe signals (I={sorted(self.universe.inputs)}, "
                f"O={sorted(self.universe.outputs)}) do not match automaton "
                f"{incomplete.name!r} (I={sorted(incomplete.inputs)}, "
                f"O={sorted(incomplete.outputs)})"
            )
        base_states = incomplete.states
        dirty_bases: list[State] = []
        reused = 0
        for state in base_states:
            signature = self._signature(incomplete, state)
            if self._signatures.get(state) == signature:
                reused += 1
                continue
            dirty_bases.append(state)
            self._signatures[state] = signature
            group = closure_state_transitions(
                incomplete,
                self.universe,
                state,
                deterministic_implementation=self.deterministic_implementation,
            )
            per_source: dict[State, list[Transition]] = {}
            for transition in group:
                per_source.setdefault(transition.source, []).append(transition)
            self._groups[state] = {
                source: tuple(sorted(slice_, key=Transition.sort_key))
                for source, slice_ in per_source.items()
            }
            self._group_sizes[state] = len(group)
        for gone in [s for s in self._groups if s not in base_states]:
            del self._groups[gone]
            del self._group_sizes[gone]
            del self._signatures[gone]

        initial = frozenset(incomplete.initial)
        if self._previous_initial is not None and initial != self._previous_initial:
            # Initial-state changes don't alter any state's edges, but be
            # conservative: treat every doubled initial state as dirty.
            dirty_bases.extend(initial | self._previous_initial)
        self._previous_initial = initial

        by_source: dict[State, tuple[Transition, ...]] = {}
        count = 0
        for state in base_states:
            by_source.update(self._groups[state])
            count += self._group_sizes[state]
        by_source[S_ALL] = self._core
        count += len(self._core)
        states: list[State] = [ClosureState(s, tag) for s in base_states for tag in (False, True)]
        states.extend([S_ALL, S_DELTA])
        labels: dict[State, frozenset[str]] = {
            ClosureState(s, tag): incomplete.labels(s) for s in base_states for tag in (False, True)
        }
        labels[S_ALL] = frozenset({CHAOS_PROPOSITION})
        labels[S_DELTA] = frozenset({CHAOS_PROPOSITION})
        closure = Automaton._assemble(
            states=frozenset(states),
            inputs=incomplete.inputs,
            outputs=incomplete.outputs,
            by_source=by_source,
            transition_count=count,
            initial=[ClosureState(q, tag) for q in incomplete.initial for tag in (False, True)],
            labels=labels,
            name=name if name is not None else f"chaos({incomplete.name})",
        )
        dirty = frozenset(
            ClosureState(s, tag) for s in set(dirty_bases) for tag in (False, True)
        )
        return ClosureUpdate(
            closure=closure,
            dirty_states=dirty,
            reused_groups=reused,
            rebuilt_groups=len(base_states) - reused,
        )


# --------------------------------------------------------------------- product


@dataclass(frozen=True)
class ProductUpdate:
    """One incremental product step."""

    automaton: Automaton
    dirty_states: frozenset[State]  #: joint states rebuilt this step (checker seeds)
    hits: int
    misses: int
    fell_back: bool


class IncrementalProduct:
    """Reusable n-ary synchronous product (Definition 3, folded left).

    Joint states are flat tuples ``(s₁, …, sₙ)`` of component-local
    states — exactly the state shape of :func:`compose` for ``n = 2``
    and :func:`compose_all` for larger ``n``.  Outgoing edges of a joint
    state are cached between updates and reused whenever every local
    state is clean; dirty locals invalidate every cached joint that
    mentions them *before* the re-exploration, so a state that is
    temporarily unreachable can never resurrect stale edges.

    With ``validate=True`` every update is cross-checked against a full
    recompose; a mismatch (which would indicate a bug in the fold) makes
    the product adopt the from-scratch result and flush its cache.
    """

    def __init__(self, *, semantics: Semantics = "strict", validate: bool = False):
        if semantics not in ("strict", "open"):
            raise CompositionError(f"unknown composition semantics {semantics!r}")
        self.semantics: Semantics = semantics
        self.validate = validate
        self.fallbacks = 0
        #: joint state -> (sorted outgoing edges, unique targets, labels)
        self._cache: dict[tuple, tuple[tuple[Transition, ...], tuple, frozenset[str]]] = {}
        self._arity: int | None = None

    def _check_composable(self, components: Sequence[Automaton]) -> None:
        for position, right in enumerate(components[1:], start=1):
            for left in components[:position]:
                if not composable(left, right):
                    raise CompositionError(
                        f"{left.name!r} and {right.name!r} are not composable: "
                        f"shared inputs {sorted(left.inputs & right.inputs)}, "
                        f"shared outputs {sorted(left.outputs & right.outputs)}"
                    )

    def _joint_edges(
        self,
        joint: tuple,
        components: Sequence[Automaton],
        in_prefix: Sequence[frozenset[str]],
        out_prefix: Sequence[frozenset[str]],
    ) -> tuple[tuple[Transition, ...], tuple]:
        """The outgoing product edges of one joint state, by left fold.

        Reproduces ``compose``'s matching per fold step: the accumulated
        prefix plays "first" with the *static* union alphabets
        ``in_prefix[k]``/``out_prefix[k]``, component ``k`` plays
        "second".
        """
        strict = self.semantics == "strict"
        acc: list[tuple] = [
            (t.interaction, (t.target,)) for t in components[0].transitions_from(joint[0])
        ]
        for k in range(1, len(components)):
            component = components[k]
            comp_in, comp_out = component.inputs, component.outputs
            pref_in, pref_out = in_prefix[k], out_prefix[k]
            merged: list[tuple] = []
            for interaction, targets in acc:
                a, b = interaction.inputs, interaction.outputs
                for t in component.transitions_from(joint[k]):
                    a2, b2 = t.interaction.inputs, t.interaction.outputs
                    if strict:
                        if (a & comp_out) != b2 or (a2 & pref_out) != b:
                            continue
                    else:
                        if (a & comp_out) != (b2 & pref_in) or (a2 & pref_out) != (b & comp_in):
                            continue
                    merged.append((interaction.union(t.interaction), (*targets, t.target)))
            acc = merged
        edges = sorted(
            {Transition(joint, interaction, targets) for interaction, targets in acc},
            key=Transition.sort_key,
        )
        targets = tuple(dict.fromkeys(edge.target for edge in edges))
        return tuple(edges), targets

    def update(
        self,
        components: Sequence[Automaton],
        dirty_locals: Sequence[frozenset[State]],
        *,
        name: str | None = None,
    ) -> ProductUpdate:
        components = list(components)
        if len(components) < 2:
            raise CompositionError("IncrementalProduct needs at least two components")
        if len(dirty_locals) != len(components):
            raise CompositionError("dirty_locals must align with components")
        if self._arity is None:
            self._arity = len(components)
        elif self._arity != len(components):
            raise CompositionError(
                f"IncrementalProduct was built for {self._arity} components, got {len(components)}"
            )
        self._check_composable(components)

        dirty_sets = [frozenset(d) for d in dirty_locals]
        if any(dirty_sets):
            stale = [
                joint
                for joint in self._cache
                if any(joint[k] in dirty_sets[k] for k in range(len(dirty_sets)))
            ]
            for joint in stale:
                del self._cache[joint]

        in_prefix: list[frozenset[str]] = [frozenset()]
        out_prefix: list[frozenset[str]] = [frozenset()]
        for component in components[:-1]:
            in_prefix.append(in_prefix[-1] | component.inputs)
            out_prefix.append(out_prefix[-1] | component.outputs)

        initial = [tuple(combo) for combo in iproduct(*(sorted(c.initial, key=repr) for c in components))]
        seen: set[tuple] = set(initial)
        queue: list[tuple] = list(initial)
        by_source: dict[State, tuple[Transition, ...]] = {}
        labels: dict[State, frozenset[str]] = {}
        count = 0
        hits = misses = 0
        dirty_joints: set[State] = set()
        cache = self._cache
        while queue:
            joint = queue.pop()
            entry = cache.get(joint)
            if entry is None:
                edges, targets = self._joint_edges(joint, components, in_prefix, out_prefix)
                label = frozenset().union(
                    *(c.labels(local) for c, local in zip(components, joint))
                )
                entry = (edges, targets, label)
                cache[joint] = entry
                misses += 1
                dirty_joints.add(joint)
            else:
                edges, targets, label = entry
                hits += 1
            if edges:
                by_source[joint] = edges
                count += len(edges)
            labels[joint] = label
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    queue.append(target)

        inputs = frozenset().union(*(c.inputs for c in components))
        outputs = frozenset().union(*(c.outputs for c in components))
        automaton = Automaton._assemble(
            states=frozenset(seen),
            inputs=inputs,
            outputs=outputs,
            by_source=by_source,
            transition_count=count,
            initial=initial,
            labels=labels,
            name=name if name is not None else " || ".join(c.name for c in components),
        )
        fell_back = False
        if self.validate:
            reference = self._full_recompose(components, name=automaton.name)
            if automaton != reference:
                self.fallbacks += 1
                fell_back = True
                self._cache.clear()
                automaton = reference
                dirty_joints = set(reference.states)
        return ProductUpdate(
            automaton=automaton,
            dirty_states=frozenset(dirty_joints),
            hits=hits,
            misses=misses,
            fell_back=fell_back,
        )

    def _full_recompose(self, components: Sequence[Automaton], *, name: str) -> Automaton:
        if len(components) == 2:
            return compose(components[0], components[1], semantics=self.semantics, name=name)
        return compose_all(components, semantics=self.semantics, name=name)


# -------------------------------------------------------------------- verifier


@dataclass
class StepStats:
    """Counters for one :meth:`IncrementalVerifier.step`."""

    closure_groups_reused: int = 0
    closure_groups_rebuilt: int = 0
    product_hits: int = 0
    product_misses: int = 0
    dirty_states: int = 0
    affected_states: int = 0
    fell_back: bool = False


@dataclass(frozen=True)
class VerificationStep:
    """Everything one iteration of the loop needs from the verifier."""

    closures: tuple[Automaton, ...]
    composed: Automaton
    checker: "ModelChecker"
    stats: StepStats = field(compare=False)


class IncrementalVerifier:
    """The incremental verification engine behind ``incremental=True``.

    One instance accompanies one synthesis run; :meth:`step` consumes
    the current learned model(s) and yields closures, the composed
    product, and a warm-started checker that together are equal — as
    automata and as verdicts — to what the from-scratch pipeline
    (:func:`chaotic_closure` + :func:`compose`/:func:`compose_all` +
    cold :class:`ModelChecker`) produces.
    """

    def __init__(
        self,
        *,
        context: Automaton | None,
        universes: Sequence[InteractionUniverse],
        semantics: Semantics = "strict",
        deterministic_implementation: bool = True,
        validate: bool = False,
    ):
        if not universes:
            raise ModelError("IncrementalVerifier needs at least one legacy universe")
        self.context = context
        self._closure_caches = [
            ClosureCache(universe, deterministic_implementation=deterministic_implementation)
            for universe in universes
        ]
        arity = (1 if context is not None else 0) + len(universes)
        self._product = (
            IncrementalProduct(semantics=semantics, validate=validate) if arity > 1 else None
        )
        self._checker: "ModelChecker | None" = None

    def step(
        self,
        models: Sequence[IncompleteAutomaton],
        *,
        closure_names: Sequence[str] | None = None,
        name: str | None = None,
    ) -> VerificationStep:
        from ..logic.checker import ModelChecker

        if len(models) != len(self._closure_caches):
            raise ModelError(
                f"expected {len(self._closure_caches)} models, got {len(models)}"
            )
        stats = StepStats()
        updates = []
        for position, (cache, model) in enumerate(zip(self._closure_caches, models)):
            closure_name = closure_names[position] if closure_names is not None else None
            update = cache.update(model, name=closure_name)
            stats.closure_groups_reused += update.reused_groups
            stats.closure_groups_rebuilt += update.rebuilt_groups
            updates.append(update)

        if self._product is None:
            composed = updates[0].closure
            dirty = updates[0].dirty_states
        else:
            components: list[Automaton] = []
            dirty_locals: list[frozenset[State]] = []
            if self.context is not None:
                components.append(self.context)
                dirty_locals.append(frozenset())
            for update in updates:
                components.append(update.closure)
                dirty_locals.append(update.dirty_states)
            product = self._product.update(components, dirty_locals, name=name)
            composed = product.automaton
            dirty = product.dirty_states
            stats.product_hits = product.hits
            stats.product_misses = product.misses
            stats.fell_back = product.fell_back

        stats.dirty_states = len(dirty)
        checker = ModelChecker(composed, warm_from=self._checker, dirty_states=dirty)
        self._checker = checker
        stats.affected_states = checker.stats.affected_states
        return VerificationStep(
            closures=tuple(update.closure for update in updates),
            composed=composed,
            checker=checker,
            stats=stats,
        )
