"""Graphviz DOT export for automata and incomplete automata.

The rendering mirrors the paper's figures: initial states are drawn with
a double border (Figure 4's double circle), chaos states as the figures'
``s_all``/``s_delta`` nodes, and refusals of an incomplete automaton as
dashed edges to a small "blocked" marker.
"""

from __future__ import annotations

from .automaton import Automaton, State
from .chaos import is_chaos_state
from .incomplete import IncompleteAutomaton

__all__ = ["to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _state_label(state: State) -> str:
    return str(state) if isinstance(state, str) else repr(state)


def _interaction_label(interaction) -> str:
    def side(signals, mark):
        return " ".join(f"{s}{mark}" for s in sorted(signals))

    received = side(interaction.inputs, "?")
    sent = side(interaction.outputs, "!")
    if not received and not sent:
        return "τ"
    return " / ".join(part for part in (received, sent) if part)


def to_dot(model: Automaton | IncompleteAutomaton, *, rankdir: str = "LR") -> str:
    """Render an automaton (or incomplete automaton) as a DOT digraph."""
    automaton = model.automaton if isinstance(model, IncompleteAutomaton) else model
    lines = [f"digraph {_quote(automaton.name)} {{", f"  rankdir={rankdir};"]
    node_ids = {state: f"n{i}" for i, state in enumerate(sorted(automaton.states, key=repr))}
    for state, node_id in node_ids.items():
        attrs = [f"label={_quote(_state_label(state))}"]
        if state in automaton.initial:
            attrs.append("peripheries=2")
        if is_chaos_state(state):
            attrs.append("style=filled")
            attrs.append("fillcolor=lightgray")
        labels = automaton.labels(state)
        if labels:
            attrs.append(f"tooltip={_quote(','.join(sorted(labels)))}")
        lines.append(f"  {node_ids[state]} [{', '.join(attrs)}];")
    for transition in sorted(
        automaton.transitions,
        key=lambda t: (repr(t.source), t.interaction.sort_key(), repr(t.target)),
    ):
        lines.append(
            f"  {node_ids[transition.source]} -> {node_ids[transition.target]} "
            f"[label={_quote(_interaction_label(transition.interaction))}];"
        )
    if isinstance(model, IncompleteAutomaton) and model.refusals:
        lines.append('  blocked [label="⊘", shape=plaintext];')
        for refusal in sorted(model.refusals, key=lambda r: (repr(r.state), r.interaction.sort_key())):
            lines.append(
                f"  {node_ids[refusal.state]} -> blocked "
                f"[label={_quote(_interaction_label(refusal.interaction))}, style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines)
