"""Sharded parallel exploration support for the product BFS.

The incremental product (:class:`~repro.automata.incremental.IncrementalProduct`)
re-explores the synchronous product from its initial joint states after
every learning step.  This module provides the machinery to split that
BFS into ``K`` shards keyed by a *stable* joint-state hash:

:func:`shard_of`
    Deterministic shard assignment.  ``hash()`` is salted per process
    (``PYTHONHASHSEED``), so the shard of a joint state is derived from
    the CRC-32 of its ``repr`` — the same canonical string that keys
    every deterministic sort in the pipeline.  The assignment is
    therefore identical across processes, hash seeds, and runs.
    This is the *fallback* for un-interned inputs: once states carry
    interned ids (:mod:`repro.automata.interning`), ownership is plain
    ``id % K`` (:func:`~repro.automata.interning.shard_of_id`) — no
    repr rendering, no hashing — which is what the dense checker core
    uses on its hot path.

:func:`select_strategy`
    Picks how the shard workers execute: inline (``sequential``) for a
    single shard or a tiny dirty region, a shared thread pool for
    ordinary workloads, and a forked process pool for very large
    re-explorations where per-shard pickling is amortised.  A forced
    strategy can be passed through the ``strategy=`` knobs instead.

:class:`WorkerPool`
    A lazily created, reusable pool of executors.  One process-wide
    instance (:func:`get_pool`) backs every product and closure cache,
    so repeated updates never pay executor start-up costs twice.

:class:`ShardReport`
    The per-shard dirty report of one product update: states explored,
    cache hits/misses, cross-shard frontier handoffs, merge conflicts,
    and the shard's dirty (re-built) joint states.  The verifier merges
    these reports — the union of the dirty sets seeds the warm model
    checker — and surfaces the counters on ``IterationRecord``.

Everything here is deliberately *scheduling-insensitive*: shard
assignment, exploration, and merge order are all derived from canonical
state order, so the merged product is bit-identical to the sequential
exploration for every shard count and every execution strategy.
"""

from __future__ import annotations

import atexit
import os
import zlib
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Iterable, Literal, Sequence, TypeVar

from ..errors import CompositionError, TestTimeoutError

__all__ = [
    "PARALLELISM_ENV",
    "CHECKER_PARALLELISM_ENV",
    "PRODUCT_STRATEGY_ENV",
    "SEQUENTIAL_WORKLOAD_FLOOR",
    "PROCESS_WORKLOAD_FLOOR",
    "FLAT_PROCESS_WORKLOAD_FLOOR",
    "Strategy",
    "ShardCrew",
    "ShardReport",
    "WorkerPool",
    "check_strategy",
    "get_pool",
    "resolve_parallelism",
    "resolve_checker_parallelism",
    "resolve_product_strategy",
    "select_strategy",
    "shard_of",
]

#: Environment variable consulted when a ``parallelism=`` knob is left
#: at ``None`` — lets CI run the whole suite sharded without touching
#: call sites.
PARALLELISM_ENV = "REPRO_PARALLELISM"

#: Environment variable consulted when a ``checker_parallelism=`` knob
#: is left at ``None``.  Overrides the fallback (usually the product
#: ``parallelism``), so CI can shard every model-checker fixpoint
#: independently of the product exploration.
CHECKER_PARALLELISM_ENV = "REPRO_CHECKER_PARALLELISM"

#: Environment variable consulted when a ``product_strategy=`` knob is
#: left at ``None`` — lets CI force every dense product exploration
#: through one execution strategy (e.g. ``process``) suite-wide, the
#: same pattern as :data:`PARALLELISM_ENV`.
PRODUCT_STRATEGY_ENV = "REPRO_PRODUCT_STRATEGY"

#: Below this many (estimated) joint states to re-explore, shard workers
#: run inline: the dirty region of a single learning step is usually a
#: handful of states, and pool dispatch would dominate.
SEQUENTIAL_WORKLOAD_FLOOR = 64

#: Above this many (estimated) joint states, a forked process pool is
#: used (where ``fork`` is available): the exploration work then dwarfs
#: the per-shard pickling of components and cache slices.
PROCESS_WORKLOAD_FLOOR = 200_000

#: The much lower process floor for *flat* shard payloads.  The dense
#: product BFS ships frontiers as ``array('I')`` id batches and inherits
#: the cache snapshot through ``fork`` instead of pickling per-shard
#: dict slices, so a forked crew amortises its start-up cost orders of
#: magnitude earlier than the legacy slice-shipping path.
FLAT_PROCESS_WORKLOAD_FLOOR = 4096

Strategy = Literal["sequential", "thread", "process"]

_STRATEGIES = ("sequential", "thread", "process")

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_parallelism(value: int | None) -> int:
    """Normalize a ``parallelism=`` knob: ``None`` defers to the environment."""
    if value is None:
        raw = os.environ.get(PARALLELISM_ENV, "").strip()
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError:
            raise CompositionError(
                f"{PARALLELISM_ENV} must be a positive integer, got {raw!r}"
            ) from None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise CompositionError(f"parallelism must be a positive integer, got {value!r}")
    return value


def resolve_checker_parallelism(value: int | None, *, fallback: int | None = None) -> int:
    """Normalize a ``checker_parallelism=`` knob.

    ``None`` defers to :data:`CHECKER_PARALLELISM_ENV`; when that is
    unset too, the checker follows ``fallback`` — conventionally the
    product ``parallelism``, so one knob shards the whole pipeline —
    or 1 when no fallback is given.
    """
    if value is None:
        raw = os.environ.get(CHECKER_PARALLELISM_ENV, "").strip()
        if not raw:
            return resolve_parallelism(fallback) if fallback is not None else 1
        try:
            value = int(raw)
        except ValueError:
            raise CompositionError(
                f"{CHECKER_PARALLELISM_ENV} must be a positive integer, got {raw!r}"
            ) from None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise CompositionError(
            f"checker_parallelism must be a positive integer, got {value!r}"
        )
    return value


def check_strategy(strategy: str | None) -> str | None:
    """Validate a forced strategy knob (``None`` means automatic)."""
    if strategy is not None and strategy not in _STRATEGIES:
        raise CompositionError(
            f"unknown sharding strategy {strategy!r}; expected one of {_STRATEGIES}"
        )
    return strategy


def resolve_product_strategy(value: str | None) -> str | None:
    """Normalize a ``product_strategy=`` knob: ``None`` defers to the environment.

    Reads :data:`PRODUCT_STRATEGY_ENV` when unset; the result (or
    ``None`` for automatic selection) is validated by
    :func:`check_strategy`.
    """
    if value is None:
        raw = os.environ.get(PRODUCT_STRATEGY_ENV, "").strip().lower()
        value = raw or None
    return check_strategy(value)


def shard_of(state: object, shards: int) -> int:
    """The owning shard of a joint state, stable across processes and seeds.

    Derived from the CRC-32 of ``repr(state)`` rather than ``hash()``:
    the built-in hash of strings (and hence of tuples containing them)
    is salted per process, which would make shard assignment — and with
    it every per-shard counter — irreproducible.

    Rendering and hashing the repr costs far more than the modulo that
    follows it, so this is documented as the fallback for *un-interned*
    inputs (the product BFS, whose states don't exist before
    exploration discovers them).  Interned states take
    :func:`repro.automata.interning.shard_of_id` instead.
    """
    if shards == 1:
        return 0
    return zlib.crc32(repr(state).encode("utf-8", "backslashreplace")) % shards


def _fork_available() -> bool:
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def select_strategy(workload: int, parallelism: int, *, flat: bool = False) -> Strategy:
    """Pick an execution strategy from the estimated re-exploration size.

    ``flat=True`` marks workloads whose shard payloads are flat id
    arrays (the dense product BFS): the process pool then engages at
    :data:`FLAT_PROCESS_WORKLOAD_FLOOR` instead of the legacy
    slice-shipping floor :data:`PROCESS_WORKLOAD_FLOOR`.  Flat
    workloads below that floor stay ``sequential`` — the dense BFS has
    a chained single-worklist schedule that attributes work to shards
    analytically, and a thread crew can never beat it on a CPU-bound
    pure-Python exploration (the GIL serialises the workers while the
    level-synchronised rounds add barrier and merge overhead).  The
    legacy dict path keeps ``thread`` as its intermediate tier because
    its per-shard cache slices make the inline schedule cache-hostile.
    """
    if parallelism <= 1 or workload < SEQUENTIAL_WORKLOAD_FLOOR:
        return "sequential"
    floor = FLAT_PROCESS_WORKLOAD_FLOOR if flat else PROCESS_WORKLOAD_FLOOR
    if workload >= floor and _fork_available():
        return "process"
    return "sequential" if flat else "thread"


@dataclass(frozen=True)
class ShardReport:
    """Dirty report of one shard of one product update."""

    shard: int  #: shard index in ``range(parallelism)``
    states_explored: int  #: joint states popped from this shard's frontier
    hits: int  #: explored states whose cached edges were reused
    misses: int  #: explored states whose edges were re-derived
    handoffs: int  #: cross-shard target discoveries emitted by this shard
    merge_conflicts: int  #: handoffs addressed to this shard that were already claimed
    dirty_states: frozenset  #: the joint states this shard re-built (checker seeds)


class ShardCrew:
    """One exploration's worth of shard workers over flat id payloads.

    The dense product BFS claims its workers *per update*, not per
    round: entering the crew pins the execution strategy (with an honest
    fallback to ``thread`` when ``process`` is requested but ``fork`` is
    unavailable), and the forked worker pool — created lazily on the
    first round that has more than one shard task — snapshots the
    parent's interned entry table by copy-on-write inheritance, so the
    per-round traffic is nothing but pickled ``array('I')`` batches and
    flat delta records.  Lazy forking is sound because every entry a
    worker may need to *read* was installed by a previous update (states
    are explored at most once per update, and entries written mid-update
    belong to states already popped from the frontier), hence is present
    in any snapshot taken during this update.

    ``map`` preserves task order for every strategy — the merge protocol
    relies on it.  Crews must be closed (use ``with``); the forked pool
    is terminated and joined on exit so no workers outlive the update.
    """

    def __init__(self, pool: "WorkerPool", strategy: str, workers: int) -> None:
        self._pool = pool
        self.requested = strategy
        self.strategy = strategy
        self.workers = workers
        self._mp_pool = None
        pool.stats["pool_crew_entries"] += 1
        if strategy == "process" and not _fork_available():
            self.strategy = "thread"
            pool.stats["pool_crew_fallbacks"] += 1

    def __enter__(self) -> "ShardCrew":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._mp_pool is not None:
            self._mp_pool.terminate()
            self._mp_pool.join()
            self._mp_pool = None

    def _forked(self):
        if self._mp_pool is None:
            import multiprocessing

            self._mp_pool = multiprocessing.get_context("fork").Pool(self.workers)
            self._pool.stats["pool_crew_forks"] += 1
        return self._mp_pool

    def map(
        self, function: Callable[[_T], _R], tasks: Sequence[_T]
    ) -> list[_R]:
        """Run ``function`` over ``tasks``, returning results in task order."""
        self._pool.stats["pool_map_calls"] += 1
        self._pool.stats["pool_tasks"] += len(tasks)
        if len(tasks) <= 1 or self.strategy == "sequential":
            self._pool.stats["pool_inline_calls"] += 1
            return [function(task) for task in tasks]
        if self.strategy == "process":
            return self._forked().map(function, tasks)
        return self._pool.map("thread", function, tasks, workers=self.workers)


class WorkerPool:
    """Reusable executors behind the sharded exploration.

    Executors are created lazily per strategy and grown (re-created)
    when a caller asks for more workers than the current pool holds;
    they are shared by every product and closure cache in the process so
    repeated updates never pay start-up costs.  ``map`` preserves task
    order, which the merge protocol relies on for determinism.
    """

    def __init__(self) -> None:
        self._executors: dict[str, tuple[int, Executor]] = {}
        self.stats: dict[str, int] = {
            "pool_map_calls": 0,
            "pool_tasks": 0,
            "pool_inline_calls": 0,
            "pool_executor_creations": 0,
            "pool_deadline_calls": 0,
            "pool_deadline_timeouts": 0,
            "pool_crew_entries": 0,
            "pool_crew_forks": 0,
            "pool_crew_fallbacks": 0,
        }

    def crew(self, strategy: str, workers: int) -> ShardCrew:
        """Claim a per-update :class:`ShardCrew` (see its docstring)."""
        return ShardCrew(self, strategy, workers)

    def _executor(self, strategy: str, workers: int) -> Executor:
        current = self._executors.get(strategy)
        if current is not None and current[0] >= workers:
            return current[1]
        if current is not None:
            current[1].shutdown(wait=True)
        if strategy == "thread":
            executor: Executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        elif strategy == "process":
            import multiprocessing

            executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=multiprocessing.get_context("fork")
            )
        else:  # pragma: no cover - guarded by map()
            raise CompositionError(f"no executor for strategy {strategy!r}")
        self._executors[strategy] = (workers, executor)
        self.stats["pool_executor_creations"] += 1
        return executor

    def map(
        self,
        strategy: str,
        function: Callable[[_T], _R],
        tasks: Sequence[_T],
        *,
        workers: int,
    ) -> list[_R]:
        """Run ``function`` over ``tasks``, returning results in task order."""
        self.stats["pool_map_calls"] += 1
        self.stats["pool_tasks"] += len(tasks)
        if strategy == "sequential" or len(tasks) <= 1:
            self.stats["pool_inline_calls"] += 1
            return [function(task) for task in tasks]
        executor = self._executor(strategy, workers)
        return list(executor.map(function, tasks))

    def call(
        self,
        function: Callable[[], _R],
        *,
        timeout: float,
        workers: int = 1,
    ) -> _R:
        """Run ``function`` on a pool thread under a wall-clock deadline.

        The robust test executor routes per-test deadlines through here
        (one supervised execution at a time, so one worker suffices).
        On expiry the straggler is *joined* — never abandoned — before
        :class:`~repro.errors.TestTimeoutError` is raised: the function
        typically drives a live component, and letting a zombie thread
        keep stepping it would corrupt the next attempt.  Deadline
        enforcement is therefore only as hard as the function's own
        stalls are finite (injected hangs always are).
        """
        self.stats["pool_deadline_calls"] += 1
        executor = self._executor("thread", max(workers, 1))
        future = executor.submit(function)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            self.stats["pool_deadline_timeouts"] += 1
            try:
                future.result()  # join the straggler; discard its outcome
            except Exception:
                pass
            raise TestTimeoutError(
                f"test execution exceeded its {timeout:.3f}s deadline"
            ) from None

    def publish_to(self, registry) -> None:
        """Snapshot the dispatch counters into a metrics registry.

        Gauge semantics (via ``MetricsRegistry.absorb``), so publishing
        after every iteration never double-counts.
        """
        registry.absorb(self.stats)

    def shutdown(self) -> None:
        for _, executor in self._executors.values():
            executor.shutdown(wait=False, cancel_futures=True)
        self._executors.clear()


_POOL = WorkerPool()
atexit.register(_POOL.shutdown)


def get_pool() -> WorkerPool:
    """The process-wide worker pool shared by all sharded explorations."""
    return _POOL


def partition(items: Iterable[_T], shards: int) -> list[list[_T]]:
    """Split items into per-shard lists by :func:`shard_of`, order-preserving."""
    buckets: list[list[_T]] = [[] for _ in range(shards)]
    for item in items:
        buckets[shard_of(item, shards)].append(item)
    return buckets
