"""Discrete-time I/O automata — the paper's formal substrate (§2).

This package implements Definitions 1–9 of the paper: automata with
power-set I/O alphabets and one-time-unit transitions, runs and traces,
synchronous parallel composition, the refinement preorder ``⊑``,
incomplete automata with refusal sets, and the chaotic closure that
turns partial knowledge into a safe over-approximation.
"""

from .analysis import (
    deadlock_witness,
    prune_unreachable,
    reachable_deadlocks,
    reachable_states,
    shortest_run_to,
    transition_cover_runs,
)
from .automaton import Automaton, State, Transition
from .chaos import (
    CHAOS_PROPOSITION,
    ChaosState,
    ClosureState,
    S_ALL,
    S_DELTA,
    chaotic_automaton,
    chaotic_closure,
    closure_base_state,
    is_chaos_state,
    run_stays_in_learned_part,
)
from .chaos import chaotic_core_transitions, closure_state_transitions
from .composition import composable, compose, compose_all, orthogonal
from .dot import to_dot
from .incomplete import IncompleteAutomaton, Refusal
from .incremental import (
    ClosureCache,
    ClosureUpdate,
    IncrementalProduct,
    IncrementalVerifier,
    ProductUpdate,
    VerificationStep,
)
from .interaction import IDLE, Interaction, InteractionUniverse
from .interning import (
    DENSE_ENV,
    DENSE_PRODUCT_ENV,
    DenseGraph,
    HAVE_NUMPY,
    StateInterner,
    resolve_dense,
    resolve_dense_product,
    shard_of_id,
)
from .refinement import (
    chaos_tolerant_labels,
    exact_labels,
    refinement_counterexample,
    refines,
    simulates,
    simulation_relation,
)
from .runs import Run, Trace, enumerate_runs, enumerate_traces, run_of_transitions
from .sharding import (
    CHECKER_PARALLELISM_ENV,
    PARALLELISM_ENV,
    PRODUCT_STRATEGY_ENV,
    ShardCrew,
    ShardReport,
    WorkerPool,
    get_pool,
    resolve_checker_parallelism,
    resolve_parallelism,
    resolve_product_strategy,
    select_strategy,
    shard_of,
)
from .transform import complete, hide, minimize, pad_states, rename_signals, restrict

__all__ = [
    "Automaton",
    "State",
    "Transition",
    "Interaction",
    "InteractionUniverse",
    "IDLE",
    "Run",
    "Trace",
    "enumerate_runs",
    "enumerate_traces",
    "run_of_transitions",
    "composable",
    "orthogonal",
    "compose",
    "compose_all",
    "reachable_states",
    "prune_unreachable",
    "shortest_run_to",
    "reachable_deadlocks",
    "deadlock_witness",
    "transition_cover_runs",
    "simulation_relation",
    "simulates",
    "refines",
    "refinement_counterexample",
    "exact_labels",
    "chaos_tolerant_labels",
    "IncompleteAutomaton",
    "Refusal",
    "CHAOS_PROPOSITION",
    "ClosureState",
    "ChaosState",
    "S_ALL",
    "S_DELTA",
    "chaotic_automaton",
    "chaotic_closure",
    "chaotic_core_transitions",
    "closure_state_transitions",
    "ClosureCache",
    "ClosureUpdate",
    "IncrementalProduct",
    "IncrementalVerifier",
    "ProductUpdate",
    "VerificationStep",
    "CHECKER_PARALLELISM_ENV",
    "DENSE_ENV",
    "DENSE_PRODUCT_ENV",
    "DenseGraph",
    "HAVE_NUMPY",
    "PARALLELISM_ENV",
    "PRODUCT_STRATEGY_ENV",
    "StateInterner",
    "resolve_checker_parallelism",
    "resolve_dense",
    "resolve_dense_product",
    "shard_of_id",
    "ShardCrew",
    "ShardReport",
    "WorkerPool",
    "get_pool",
    "resolve_parallelism",
    "resolve_product_strategy",
    "select_strategy",
    "shard_of",
    "is_chaos_state",
    "closure_base_state",
    "run_stays_in_learned_part",
    "restrict",
    "rename_signals",
    "hide",
    "complete",
    "minimize",
    "pad_states",
    "to_dot",
]
