"""Synchronous parallel composition (Definition 3 of the paper).

Two automata with disjoint input sets and disjoint output sets are
*composable*; if neither reads what the other writes they are even
*orthogonal*.  The parallel composition ``M ∥ M'`` executes both
machines in lock-step (synchronous execution, §2.2): a combined
transition exists iff the local transitions agree on the signals they
exchange.

Two matching disciplines are offered:

``strict`` (the paper's Definition 3 literally)
    ``(A ∩ O') = B'`` and ``(A' ∩ O) = B`` — every output of one side
    must be consumed by the other in the same time unit.  Appropriate
    for *closed* two-party systems such as a pattern role against a
    legacy component.

``open``
    ``(A ∩ O') = (B' ∩ I)`` and ``(A' ∩ O) = (B ∩ I')`` — only the
    signals actually shared between the two machines must match;
    outputs addressed to third parties pass through.  This is the
    discipline used when folding more than two automata together with
    :func:`compose_all`.

The composed state space is built on the fly from the initial states, so
unreachable state combinations are never materialised (the paper's
"S'' and T'' are further adjusted to exclude all non reachable state
combinations and transitions").

Joint states are plain tuples of component states, hashed and compared
structurally.  That cost is paid once per state: downstream, the model
checker interns every joint state to a contiguous integer id
(:class:`~repro.automata.interning.StateInterner`) and runs its
fixpoints over flat arrays, so composite-state hashing never sits on
the verification hot path.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from typing import Literal

from ..errors import CompositionError
from .automaton import Automaton, State, Transition

__all__ = ["composable", "orthogonal", "compose", "compose_all"]

Semantics = Literal["strict", "open"]


def composable(first: Automaton, second: Automaton) -> bool:
    """``I ∩ I' = ∅`` and ``O ∩ O' = ∅`` (§2, "composable")."""
    return not (first.inputs & second.inputs) and not (first.outputs & second.outputs)


def orthogonal(first: Automaton, second: Automaton) -> bool:
    """Composable and additionally ``I ∩ O' = ∅`` and ``O ∩ I' = ∅``."""
    return (
        composable(first, second)
        and not (first.inputs & second.outputs)
        and not (first.outputs & second.inputs)
    )


def _matches(
    left: Transition,
    right: Transition,
    first: Automaton,
    second: Automaton,
    semantics: Semantics,
) -> bool:
    a, b = left.inputs, left.outputs
    a2, b2 = right.inputs, right.outputs
    if semantics == "strict":
        return (a & second.outputs) == b2 and (a2 & first.outputs) == b
    return (a & second.outputs) == (b2 & first.inputs) and (a2 & first.outputs) == (
        b & second.inputs
    )


def _sharded_product(
    components: Sequence[Automaton],
    semantics: Semantics,
    name: str,
    parallelism: int,
) -> Automaton:
    """One-shot sharded exploration (used when ``parallelism > 1``)."""
    # Imported lazily: ``incremental`` imports this module for the
    # validate/fallback path, so the dependency must stay one-way at
    # import time.
    from .incremental import IncrementalProduct

    product = IncrementalProduct(semantics=semantics, parallelism=parallelism)
    update = product.update(
        components, [frozenset()] * len(components), name=name
    )
    return update.automaton


def compose(
    first: Automaton,
    second: Automaton,
    *,
    semantics: Semantics = "strict",
    name: str | None = None,
    parallelism: int | None = None,
    _flatten_left: bool = False,
) -> Automaton:
    """The parallel composition ``first ∥ second`` of Definition 3.

    States of the result are ``(s, s')`` pairs, labels are the union
    ``L(s) ∪ L'(s')``, and only state combinations reachable from the
    initial pairs ``Q × Q'`` are kept.

    ``parallelism`` shards the reachability exploration by joint-state
    hash (see :mod:`repro.automata.sharding`); the result is
    bit-identical to the sequential exploration for every shard count.
    ``None`` defers to the ``REPRO_PARALLELISM`` environment variable.

    ``_flatten_left`` is internal, for :func:`compose_all`: when the
    left operand's states are already tuples of component states, the
    combined states are built as ``(*s, s')`` directly during the BFS —
    so folding ``n`` machines flattens once instead of re-mapping the
    whole accumulated product after every fold step.
    """
    if not composable(first, second):
        raise CompositionError(
            f"{first.name!r} and {second.name!r} are not composable: "
            f"shared inputs {sorted(first.inputs & second.inputs)}, "
            f"shared outputs {sorted(first.outputs & second.outputs)}"
        )
    if semantics not in ("strict", "open"):
        raise CompositionError(f"unknown composition semantics {semantics!r}")
    if not _flatten_left:
        from .sharding import resolve_parallelism

        shards = resolve_parallelism(parallelism)
        if shards > 1:
            return _sharded_product(
                [first, second],
                semantics,
                name if name is not None else f"({first.name} || {second.name})",
                shards,
            )

    if _flatten_left:
        join = lambda s1, s2: (*s1, s2)  # noqa: E731
    else:
        join = lambda s1, s2: (s1, s2)  # noqa: E731
    initial = [
        join(q1, q2) for q1 in sorted(first.initial, key=repr) for q2 in sorted(second.initial, key=repr)
    ]
    pairs: dict[State, tuple[State, State]] = {
        join(q1, q2): (q1, q2) for q1 in first.initial for q2 in second.initial
    }
    seen: set[State] = set(initial)
    queue: deque[State] = deque(initial)
    transitions: list[Transition] = []
    while queue:
        combined = queue.popleft()
        s1, s2 = pairs[combined]
        for left in first.transitions_from(s1):
            for right in second.transitions_from(s2):
                if not _matches(left, right, first, second, semantics):
                    continue
                target = join(left.target, right.target)
                transitions.append(
                    Transition(combined, left.interaction.union(right.interaction), target)
                )
                if target not in seen:
                    seen.add(target)
                    pairs[target] = (left.target, right.target)
                    queue.append(target)

    labels = {state: first.labels(s1) | second.labels(s2) for state, (s1, s2) in pairs.items()}
    return Automaton(
        states=seen,
        inputs=first.inputs | second.inputs,
        outputs=first.outputs | second.outputs,
        transitions=transitions,
        initial=initial,
        labels=labels,
        name=name if name is not None else f"({first.name} || {second.name})",
    )


def compose_all(
    automata: Sequence[Automaton],
    *,
    semantics: Semantics = "open",
    name: str | None = None,
    parallelism: int | None = None,
) -> Automaton:
    """Fold a sequence of automata into one composition, left to right.

    The resulting states are flat tuples ``(s₁, …, sₙ)`` rather than
    nested pairs, so that run projection by component index works
    uniformly regardless of how many machines were composed.  The
    flattening happens inside each fold step's BFS (no quadratic
    ``map_states`` pass over the accumulated product).

    ``parallelism`` shards the exploration exactly as in
    :func:`compose`; the folded result is bit-identical either way.
    """
    if not automata:
        raise CompositionError("compose_all needs at least one automaton")
    if len(automata) >= 2:
        from .sharding import resolve_parallelism

        shards = resolve_parallelism(parallelism)
        if shards > 1:
            folded_name = automata[0].name
            for machine in automata[1:]:
                folded_name = f"({folded_name} || {machine.name})"
            return _sharded_product(
                automata, semantics, name if name is not None else folded_name, shards
            )
    result = automata[0]
    for position, machine in enumerate(automata[1:]):
        result = compose(result, machine, semantics=semantics, _flatten_left=position > 0)
    if name is not None:
        result = result.replace(name=name)
    return result
