"""Reachability and structural analyses over automata.

These are the small graph algorithms everything else builds on:
breadth-first reachability, shortest witness runs, deadlock detection
(the ``δ`` of §2.1), and pruning of unreachable state combinations.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from .automaton import Automaton, State, Transition
from .runs import Run, run_of_transitions

__all__ = [
    "reachable_states",
    "prune_unreachable",
    "shortest_run_to",
    "reachable_deadlocks",
    "deadlock_witness",
    "transition_cover_runs",
]


def reachable_states(automaton: Automaton) -> frozenset[State]:
    """All states reachable from the initial set."""
    seen: set[State] = set(automaton.initial)
    queue: deque[State] = deque(automaton.initial)
    while queue:
        state = queue.popleft()
        for transition in automaton.transitions_from(state):
            if transition.target not in seen:
                seen.add(transition.target)
                queue.append(transition.target)
    return frozenset(seen)


def prune_unreachable(automaton: Automaton) -> Automaton:
    """A copy restricted to the reachable part of the state space."""
    reachable = reachable_states(automaton)
    if reachable == automaton.states:
        return automaton
    return automaton.replace(
        states=reachable,
        transitions=[t for t in automaton.transitions if t.source in reachable],
        labels={s: props for s, props in automaton.label_map.items() if s in reachable},
    )


def shortest_run_to(automaton: Automaton, goal: Callable[[State], bool]) -> Run | None:
    """A shortest regular run from an initial state to a goal state.

    Returns ``None`` when no goal state is reachable.  Used by the
    counterexample generator to produce the *shortest* witness — the
    optimisation the paper's conclusion singles out as desirable for
    counterexample-guided testing.
    """
    parents: dict[State, Transition | None] = {}
    queue: deque[State] = deque()
    for state in sorted(automaton.initial, key=repr):
        parents[state] = None
        queue.append(state)
    target: State | None = None
    while queue:
        state = queue.popleft()
        if goal(state):
            target = state
            break
        for transition in automaton.transitions_from(state):
            if transition.target not in parents:
                parents[transition.target] = transition
                queue.append(transition.target)
    if target is None and not any(goal(s) for s in parents):
        return None
    if target is None:
        target = next(s for s in parents if goal(s))
    chain: list[Transition] = []
    cursor: State = target
    while parents[cursor] is not None:
        transition = parents[cursor]
        assert transition is not None
        chain.append(transition)
        cursor = transition.source
    chain.reverse()
    if not chain:
        return Run(target)
    return run_of_transitions(chain)


def reachable_deadlocks(automaton: Automaton) -> frozenset[State]:
    """Reachable states without outgoing transitions (``M ⊨ δ`` check)."""
    return frozenset(s for s in reachable_states(automaton) if automaton.is_deadlock(s))


def deadlock_witness(automaton: Automaton) -> Run | None:
    """A shortest run into a reachable deadlock state, or ``None``."""
    return shortest_run_to(automaton, automaton.is_deadlock)


def transition_cover_runs(automaton: Automaton, extra: Iterable[Transition] = ()) -> list[Run]:
    """Runs that jointly execute every reachable transition at least once.

    Used by the model-based testing support (§5) to build a transition
    coverage test suite from a behavioral model.
    """
    runs: list[Run] = []
    covered: set[Transition] = set()
    pending = [
        t
        for t in sorted(
            automaton.transitions, key=lambda t: (repr(t.source), t.interaction.sort_key(), repr(t.target))
        )
        if t.source in reachable_states(automaton)
    ]
    pending.extend(extra)
    for transition in pending:
        if transition in covered:
            continue
        prefix = shortest_run_to(automaton, lambda s, src=transition.source: s == src)
        if prefix is None:
            continue
        run = prefix.extend(transition.interaction, transition.target)
        covered.update(run.transitions())
        runs.append(run)
    return runs
