"""The automaton model of Definition 1 (extended with labeling, §2.1).

An :class:`Automaton` is the 6-tuple ``M = (S, I, O, T, L, Q)``:

* a finite set ``S`` of states (arbitrary hashable Python values),
* input signals ``I`` and output signals ``O`` (sets of strings),
* transitions ``T ⊆ S × ℘(I) × ℘(O) × S`` (see
  :class:`~repro.automata.interaction.Interaction`),
* a labeling ``L : S → ℘(P)`` assigning atomic propositions to states,
* a non-empty set ``Q ⊆ S`` of initial states.

The time semantics is the paper's: every transition takes exactly one
discrete time unit.  A state without outgoing transitions is a
*deadlock* state (§2.1, the special symbol ``δ``).

Instances are immutable after construction; all "modifying" operations
return new automata.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Callable

from ..errors import ModelError
from .interaction import Interaction

__all__ = ["State", "Transition", "Automaton"]

State = Hashable


class Transition:
    """A single transition ``(source, A, B, target)`` of Definition 1.

    The hash and the canonical sort key are computed once per object and
    cached: transitions are routinely reused across many automata (the
    incremental closure and product keep them alive between synthesis
    iterations), and re-deriving ``repr``-based keys on every
    :class:`Automaton` construction used to dominate construction time.
    """

    __slots__ = ("source", "interaction", "target", "_hash", "_skey")

    def __init__(self, source: State, interaction: Interaction, target: State):
        self.source = source
        self.interaction = interaction
        self.target = target

    @property
    def inputs(self) -> frozenset[str]:
        return self.interaction.inputs

    @property
    def outputs(self) -> frozenset[str]:
        return self.interaction.outputs

    def _key(self) -> tuple:
        return (self.source, self.interaction, self.target)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Transition):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((self.source, self.interaction, self.target))
            self._hash = value
            return value

    def sort_key(self) -> tuple:
        """Canonical ``(repr(source), interaction key, repr(target))`` order."""
        try:
            return self._skey
        except AttributeError:
            key = (repr(self.source), self.interaction.sort_key(), repr(self.target))
            self._skey = key
            return key

    def __repr__(self) -> str:
        return f"Transition({self.source!r}, {self.interaction}, {self.target!r})"


def _as_transition(item: "Transition | tuple") -> Transition:
    if isinstance(item, Transition):
        return item
    if isinstance(item, tuple):
        if len(item) == 3:
            source, interaction, target = item
            if not isinstance(interaction, Interaction):
                interaction = Interaction(*interaction)
            return Transition(source, interaction, target)
        if len(item) == 4:
            source, inputs, outputs, target = item
            return Transition(source, Interaction(inputs, outputs), target)
    raise TypeError(f"cannot interpret {item!r} as a transition")


class Automaton:
    """Immutable finite automaton ``M = (S, I, O, T, L, Q)``.

    Parameters
    ----------
    states:
        The state set ``S``.  States mentioned by transitions or initial
        states are added automatically.
    inputs, outputs:
        The signal sets ``I`` and ``O``.
    transitions:
        An iterable of :class:`Transition` objects or of
        ``(source, interaction, target)`` /
        ``(source, inputs, outputs, target)`` tuples.
    initial:
        The non-empty initial state set ``Q``.
    labels:
        Optional mapping ``L`` from states to iterables of atomic
        propositions; unlisted states are labeled with the empty set.
    name:
        Optional human-readable name used in reports and DOT exports.
    """

    __slots__ = (
        "name",
        "states",
        "inputs",
        "outputs",
        "initial",
        "_labels",
        "_by_source",
        "_by_source_inputs",
        "_ordered",
        "_transitions",
        "_transition_count",
    )

    def __init__(
        self,
        *,
        states: Iterable[State] = (),
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        transitions: Iterable[Transition | tuple] = (),
        initial: Iterable[State],
        labels: Mapping[State, Iterable[str]] | None = None,
        name: str = "M",
        _ordered: "tuple[Transition, ...] | None" = None,
        _trusted: bool = False,
    ):
        self.name = name
        self.inputs = frozenset(inputs)
        self.outputs = frozenset(outputs)
        if _ordered is not None:
            ordered = _ordered
            transition_set = frozenset(ordered)
        else:
            transition_set = frozenset(_as_transition(t) for t in transitions)
            ordered = tuple(sorted(transition_set, key=Transition.sort_key))
        initial_set = frozenset(initial)
        state_set = (
            frozenset(states)
            | initial_set
            | frozenset(t.source for t in ordered)
            | frozenset(t.target for t in ordered)
        )
        self.states = state_set
        self._transitions = transition_set
        self._transition_count = len(transition_set)
        self.initial = initial_set
        self._ordered = ordered
        label_map: dict[State, frozenset[str]] = {}
        if labels:
            for state, props in labels.items():
                label_map[state] = frozenset(props)
        self._labels = label_map
        grouped: dict[State, list[Transition]] = {}
        for transition in ordered:
            grouped.setdefault(transition.source, []).append(transition)
        self._by_source = {source: tuple(slice_) for source, slice_ in grouped.items()}
        self._by_source_inputs = None
        self._validate(check_signals=not _trusted)

    @classmethod
    def _assemble(
        cls,
        *,
        states: frozenset[State],
        inputs: frozenset[str],
        outputs: frozenset[str],
        by_source: "dict[State, tuple[Transition, ...]]",
        transition_count: int,
        initial: Iterable[State],
        labels: dict[State, frozenset[str]],
        name: str,
    ) -> "Automaton":
        """Internal zero-copy constructor for the incremental engine.

        ``by_source`` must map each non-deadlock state to its outgoing
        transitions sorted by :meth:`Transition.sort_key` (i.e. exactly
        the per-source slices of the canonical global order), contain no
        duplicates, and mention only valid signals — the caller
        guarantees what ``__init__`` normally establishes.  The global
        transition tuple/set are derived lazily on first use, so
        assembling an automaton is O(|S|) instead of O(|T| log |T|).
        """
        self = object.__new__(cls)
        self.name = name
        self.inputs = inputs
        self.outputs = outputs
        self.states = states
        self.initial = frozenset(initial)
        self._labels = labels
        self._by_source = by_source
        self._by_source_inputs = None
        self._ordered = None
        self._transitions = None
        self._transition_count = transition_count
        if not self.initial:
            raise ModelError(f"automaton {name!r} has no initial state")
        return self

    def _validate(self, *, check_signals: bool = True) -> None:
        if not self.initial:
            raise ModelError(f"automaton {self.name!r} has no initial state")
        stray = self._labels.keys() - self.states
        if stray:
            raise ModelError(f"automaton {self.name!r} labels unknown states: {sorted(map(repr, stray))}")
        if not check_signals:
            return
        for transition in self.transitions:
            if not transition.inputs <= self.inputs:
                raise ModelError(
                    f"automaton {self.name!r}: transition {transition!r} consumes signals "
                    f"outside I={sorted(self.inputs)}"
                )
            if not transition.outputs <= self.outputs:
                raise ModelError(
                    f"automaton {self.name!r}: transition {transition!r} produces signals "
                    f"outside O={sorted(self.outputs)}"
                )

    # ------------------------------------------------------------------ labels

    def labels(self, state: State) -> frozenset[str]:
        """The labeling ``L(state)``; the empty set for unlabeled states."""
        if state not in self.states:
            raise ModelError(f"automaton {self.name!r} has no state {state!r}")
        return self._labels.get(state, frozenset())

    @property
    def label_map(self) -> dict[State, frozenset[str]]:
        """``L`` as a dict over all states (unlabeled states included)."""
        return {state: self._labels.get(state, frozenset()) for state in self.states}

    @property
    def propositions(self) -> frozenset[str]:
        """``𝓛(M)``: every proposition used by the labeling (§2.1)."""
        if not self._labels:
            return frozenset()
        return frozenset().union(*self._labels.values())

    # -------------------------------------------------------------- structure

    @property
    def transitions(self) -> frozenset[Transition]:
        """The transition set ``T``."""
        cached = self._transitions
        if cached is None:
            cached = frozenset(self.ordered_transitions)
            self._transitions = cached
        return cached

    @property
    def transition_count(self) -> int:
        """``|T|`` without materialising the transition set."""
        return self._transition_count

    @property
    def ordered_transitions(self) -> tuple[Transition, ...]:
        """All transitions in the canonical deterministic order."""
        cached = self._ordered
        if cached is None:
            # Assembled automata store per-source slices of the canonical
            # order; concatenating them by source repr restores it.
            # Distinct sources can share a repr, and breaking such a tie
            # by dict insertion order would leak construction history
            # (e.g. sequential vs. sharded exploration) into the
            # canonical order — so tied groups are merged and re-sorted
            # by the full transition key instead.
            sources = sorted(self._by_source, key=repr)
            pieces: list[Transition] = []
            index = 0
            while index < len(sources):
                end = index + 1
                key = repr(sources[index])
                while end < len(sources) and repr(sources[end]) == key:
                    end += 1
                if end == index + 1:
                    pieces.extend(self._by_source[sources[index]])
                else:
                    pieces.extend(
                        sorted(
                            (t for s in sources[index:end] for t in self._by_source[s]),
                            key=Transition.sort_key,
                        )
                    )
                index = end
            cached = tuple(pieces)
            self._ordered = cached
        return cached

    def transitions_from(self, state: State) -> tuple[Transition, ...]:
        """All transitions leaving ``state`` in a deterministic order."""
        return self._by_source.get(state, ())

    def transitions_on(self, state: State, inputs: Iterable[str]) -> tuple[Transition, ...]:
        """Transitions from ``state`` consuming exactly the given inputs."""
        index = self._by_source_inputs
        if index is None:
            grouped: dict[tuple, list[Transition]] = {}
            for transition in self.ordered_transitions:
                grouped.setdefault((transition.source, transition.interaction.inputs), []).append(
                    transition
                )
            index = {key: tuple(slice_) for key, slice_ in grouped.items()}
            self._by_source_inputs = index
        return index.get((state, frozenset(inputs)), ())

    def successors(self, state: State) -> frozenset[State]:
        return frozenset(t.target for t in self.transitions_from(state))

    def enabled(self, state: State) -> frozenset[Interaction]:
        """The interactions offered in ``state``."""
        return frozenset(t.interaction for t in self.transitions_from(state))

    def is_deadlock(self, state: State) -> bool:
        """True iff ``state`` has no outgoing transition (the ``δ`` case)."""
        return not self._by_source.get(state)

    @property
    def deadlock_states(self) -> frozenset[State]:
        return frozenset(s for s in self.states if self.is_deadlock(s))

    @property
    def interactions(self) -> frozenset[Interaction]:
        """Every interaction that appears on some transition."""
        return frozenset(t.interaction for t in self.transitions)

    def is_deterministic(self) -> bool:
        """Definition 1 / §2.6 determinism: ≤ 1 target per ``(s, A, B)``."""
        seen: set[tuple[State, Interaction]] = set()
        for transition in self.transitions:
            key = (transition.source, transition.interaction)
            if key in seen:
                return False
            seen.add(key)
        return len(self.initial) <= 1

    def is_strongly_deterministic(self) -> bool:
        """≤ 1 reaction per ``(s, A)``: the executable-component notion.

        §4.3 of the paper requires the *implementation* to be
        deterministic ("any non-determinism or pseudo non-determinism is
        excluded"); for an executable component that means the reaction
        (outputs and successor state) to a given input set is unique.
        """
        seen: set[tuple[State, frozenset[str]]] = set()
        for transition in self.transitions:
            key = (transition.source, transition.interaction.inputs)
            if key in seen:
                return False
            seen.add(key)
        return len(self.initial) <= 1

    # ------------------------------------------------------------- rebuilding

    def replace(
        self,
        *,
        states: Iterable[State] | None = None,
        inputs: Iterable[str] | None = None,
        outputs: Iterable[str] | None = None,
        transitions: Iterable[Transition | tuple] | None = None,
        initial: Iterable[State] | None = None,
        labels: Mapping[State, Iterable[str]] | None = None,
        name: str | None = None,
    ) -> "Automaton":
        """A copy with the given fields replaced."""
        return Automaton(
            states=self.states if states is None else states,
            inputs=self.inputs if inputs is None else inputs,
            outputs=self.outputs if outputs is None else outputs,
            transitions=() if transitions is None else transitions,
            initial=self.initial if initial is None else initial,
            labels=self._labels if labels is None else labels,
            name=self.name if name is None else name,
            # Unchanged transitions keep their canonical order — no re-sort.
            _ordered=self.ordered_transitions if transitions is None else None,
        )

    def with_labels(self, labeler: Callable[[State], Iterable[str]]) -> "Automaton":
        """A copy labeled by applying ``labeler`` to every state."""
        return self.replace(labels={state: frozenset(labeler(state)) for state in self.states})

    def map_states(self, rename: Callable[[State], State], *, name: str | None = None) -> "Automaton":
        """A copy with every state renamed through ``rename``.

        ``rename`` must be injective on the state set; otherwise distinct
        states would be merged silently, which is almost never intended.
        """
        mapping = {state: rename(state) for state in self.states}
        if len(set(mapping.values())) != len(mapping):
            raise ModelError(f"state renaming for {self.name!r} is not injective")
        return Automaton(
            states=mapping.values(),
            inputs=self.inputs,
            outputs=self.outputs,
            transitions=[
                Transition(mapping[t.source], t.interaction, mapping[t.target]) for t in self.transitions
            ],
            initial=[mapping[s] for s in self.initial],
            labels={mapping[s]: props for s, props in self._labels.items()},
            name=self.name if name is None else name,
        )

    # ------------------------------------------------------------------ dunder

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Automaton):
            return NotImplemented
        return (
            self.states == other.states
            and self.inputs == other.inputs
            and self.outputs == other.outputs
            and self.transitions == other.transitions
            and self.initial == other.initial
            and self.label_map == other.label_map
        )

    def __hash__(self) -> int:
        return hash((self.states, self.inputs, self.outputs, self.transitions, self.initial))

    def __repr__(self) -> str:
        return (
            f"Automaton(name={self.name!r}, |S|={len(self.states)}, |T|={len(self.transitions)}, "
            f"|I|={len(self.inputs)}, |O|={len(self.outputs)}, |Q|={len(self.initial)})"
        )
