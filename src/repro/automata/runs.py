"""Runs and traces (Definitions 2 and 7 of the paper).

A *regular run* is an alternating sequence of states and interactions
``π = s₁, A₁/B₁, s₂, …`` where each ``(sᵢ, Aᵢ, Bᵢ, sᵢ₊₁)`` is a
transition.  A *deadlock run* additionally ends with a final interaction
``Aₙ/Bₙ`` that has **no** successor state — the attempted step is
blocked.  ``π|_{I/O}`` restricts a run to its observable *trace* (the
interaction sequence) and ``π|_S`` to its state sequence.

Runs are the common currency of the library: model-checking
counterexamples, test inputs, monitored executions, and learned behavior
are all runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import ModelError
from .automaton import Automaton, State, Transition
from .interaction import Interaction

__all__ = ["Run", "Trace", "enumerate_runs", "enumerate_traces", "run_of_transitions"]

#: A trace ``π|_{I/O}``: the observable interaction sequence of a run.
Trace = tuple[Interaction, ...]


@dataclass(frozen=True)
class Run:
    """A regular or deadlock run.

    Attributes
    ----------
    start:
        The first state ``s₁``.
    steps:
        The executed steps, each a ``(interaction, target_state)`` pair.
    blocked:
        ``None`` for a regular run.  For a deadlock run, the final
        interaction ``Aₙ/Bₙ`` that was attempted in the last state but
        has no successor.
    """

    start: State
    steps: tuple[tuple[Interaction, State], ...] = field(default_factory=tuple)
    blocked: Interaction | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    # ------------------------------------------------------------- properties

    @property
    def is_deadlock_run(self) -> bool:
        return self.blocked is not None

    @property
    def states(self) -> tuple[State, ...]:
        """``π|_S``: the visited state sequence."""
        return (self.start, *(state for _, state in self.steps))

    @property
    def last_state(self) -> State:
        """The state in which the run ends (where ``blocked`` applies)."""
        return self.steps[-1][1] if self.steps else self.start

    @property
    def trace(self) -> Trace:
        """``π|_{I/O}``: the observable trace, including a blocked tail."""
        interactions = tuple(interaction for interaction, _ in self.steps)
        if self.blocked is not None:
            interactions += (self.blocked,)
        return interactions

    def __len__(self) -> int:
        """The number of interactions (blocked attempt included)."""
        return len(self.steps) + (1 if self.blocked is not None else 0)

    # ------------------------------------------------------------- operations

    def extend(self, interaction: Interaction, target: State) -> "Run":
        """A new run with one more executed step appended."""
        if self.blocked is not None:
            raise ModelError("cannot extend a deadlock run: its last interaction is blocked")
        return Run(self.start, (*self.steps, (interaction, target)))

    def block(self, interaction: Interaction) -> "Run":
        """A new deadlock run ending with the given blocked interaction."""
        if self.blocked is not None:
            raise ModelError("run already ends in a blocked interaction")
        return Run(self.start, self.steps, blocked=interaction)

    def prefix(self, n_steps: int) -> "Run":
        """The regular run consisting of the first ``n_steps`` steps."""
        if not 0 <= n_steps <= len(self.steps):
            raise ValueError(f"prefix length {n_steps} out of range 0..{len(self.steps)}")
        return Run(self.start, self.steps[:n_steps])

    def transitions(self) -> tuple[Transition, ...]:
        """The executed steps as :class:`Transition` objects."""
        result = []
        current = self.start
        for interaction, target in self.steps:
            result.append(Transition(current, interaction, target))
            current = target
        return tuple(result)

    def project(self, component_index: int, inputs: frozenset[str], outputs: frozenset[str]) -> "Run":
        """Project a run of a composed automaton onto one component.

        The states of a pairwise parallel composition are tuples; the
        projection keeps component ``component_index`` of each state and
        restricts every interaction to the component's signals.  This is
        how a verification counterexample of ``M_a^c ∥ M_a^i`` becomes a
        test input for the legacy component (§4.2).
        """

        def pick(state: State) -> State:
            if not isinstance(state, tuple):
                raise ModelError(f"state {state!r} is not a composed (tuple) state")
            return state[component_index]

        steps = tuple(
            (interaction.restrict(inputs, outputs), pick(state)) for interaction, state in self.steps
        )
        blocked = self.blocked.restrict(inputs, outputs) if self.blocked is not None else None
        return Run(pick(self.start), steps, blocked=blocked)

    # ------------------------------------------------------------- validation

    def is_run_of(self, automaton: Automaton) -> bool:
        """Is this a run of ``automaton`` per Definition 2?

        Checks that the start state is initial, every step is a
        transition, and — for a deadlock run — that the final interaction
        indeed has no successor from the last state.
        """
        if self.start not in automaton.initial:
            return False
        current = self.start
        for interaction, target in self.steps:
            if Transition(current, interaction, target) not in automaton.transitions:
                return False
            current = target
        if self.blocked is not None:
            for transition in automaton.transitions_from(current):
                if transition.interaction == self.blocked:
                    return False
        return True

    def __str__(self) -> str:
        parts = [repr(self.start)]
        for interaction, state in self.steps:
            parts.append(f"-{interaction}->")
            parts.append(repr(state))
        if self.blocked is not None:
            parts.append(f"-{self.blocked}-> ⊥")
        return " ".join(parts)


def run_of_transitions(transitions: Iterable[Transition], *, blocked: Interaction | None = None) -> Run:
    """Build a run from a connected transition sequence."""
    transitions = list(transitions)
    if not transitions:
        raise ModelError("cannot build a run from an empty transition sequence")
    run = Run(transitions[0].source)
    current = transitions[0].source
    for transition in transitions:
        if transition.source != current:
            raise ModelError(
                f"transition sequence is not connected: {transition.source!r} != {current!r}"
            )
        run = run.extend(transition.interaction, transition.target)
        current = transition.target
    if blocked is not None:
        run = run.block(blocked)
    return run


def enumerate_runs(
    automaton: Automaton,
    max_steps: int,
    *,
    include_deadlock_runs: bool = True,
    blocked_universe: Iterable[Interaction] | None = None,
) -> Iterator[Run]:
    """Enumerate ``[M]`` up to a step bound (for tests and brute force).

    Yields every regular run with at most ``max_steps`` executed steps.
    With ``include_deadlock_runs`` the deadlock runs of Definition 2 are
    produced as well: for a *complete* automaton every interaction at a
    deadlock state is blocked, so a universe of candidate blocked
    interactions must be supplied via ``blocked_universe`` (defaulting to
    all interactions occurring anywhere in the automaton).
    """
    if max_steps < 0:
        raise ValueError("max_steps must be non-negative")
    candidates = tuple(
        sorted(
            set(blocked_universe) if blocked_universe is not None else automaton.interactions,
            key=Interaction.sort_key,
        )
    )

    def blocked_here(state: State) -> Iterator[Interaction]:
        enabled = automaton.enabled(state)
        for interaction in candidates:
            if interaction not in enabled:
                yield interaction

    stack: list[Run] = [Run(state) for state in sorted(automaton.initial, key=repr)]
    while stack:
        run = stack.pop()
        yield run
        if include_deadlock_runs:
            for interaction in blocked_here(run.last_state):
                yield run.block(interaction)
        if len(run.steps) < max_steps:
            for transition in automaton.transitions_from(run.last_state):
                stack.append(run.extend(transition.interaction, transition.target))


def enumerate_traces(automaton: Automaton, max_steps: int) -> set[Trace]:
    """All observable traces of regular runs up to the step bound."""
    return {
        run.trace
        for run in enumerate_runs(automaton, max_steps, include_deadlock_runs=False)
    }
