"""Refinement ``⊑`` and simulation ``≼`` (Definition 4, Lemmas 1–3).

Definition 4 demands two things of a refinement ``M ⊑ M'``:

1. every run of ``M`` is matched by a run of ``M'`` with the same
   observable trace and point-wise equal state labels, and
2. every *deadlock* run of ``M`` is also a possible deadlock run of
   ``M'`` (reactivity preservation — this is what makes ``⊑`` stronger
   than plain simulation and lets Lemma 1 transport deadlock freedom).

The decision procedure used here is a determinisation (subset
construction) of the abstract automaton: for every run of ``M`` we track
the *set* of ``M'`` states reachable by a run with the same trace.
Condition 1 holds iff some tracked state always label-matches;
condition 2 is implemented in its *failures* reading (the paper's
footnote 4 relates deadlock runs to CSP failures/refusals): the whole
refusal set of an ``M`` state must be matched by a *single*
trace-equivalent ``M'`` state.  This is the reading under which the
paper's Lemma 1 is sound — matching each refused interaction by a
different specification state would admit refinements that introduce
fresh deadlocks, contradicting Lemma 1's proof ("from M' deadlock free
follows that s' will have at least one outgoing transition and due to
condition 2 s also").  The procedure terminates because both state sets
are finite.

A plain simulation checker is provided as well; simulation implies the
trace-matching half of refinement and is cheaper (polynomial), which is
useful for the large closures produced during iterative synthesis.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from ..errors import RefinementError
from .automaton import Automaton, State
from .interaction import Interaction
from .runs import Run

__all__ = [
    "LabelMatch",
    "exact_labels",
    "chaos_tolerant_labels",
    "simulation_relation",
    "simulates",
    "refines",
    "refinement_counterexample",
]

#: Predicate deciding whether an implementation label set is matched by a
#: specification label set.  Definition 4 uses equality; Theorem 1's
#: proof "lets s_δ and s_∀ fulfil all positive and negative propositions",
#: which :func:`chaos_tolerant_labels` captures.
LabelMatch = Callable[[frozenset[str], frozenset[str]], bool]


def exact_labels(impl_labels: frozenset[str], spec_labels: frozenset[str]) -> bool:
    """Definition 4's literal requirement ``L(s) = L'(s')``."""
    return impl_labels == spec_labels


def chaos_tolerant_labels(chaos_proposition: str) -> LabelMatch:
    """Label matching that lets chaos states match any labeling.

    §2.7 replaces per-subset chaos states by a single fresh proposition
    ``p'`` and weakens formulas accordingly; for refinement checking the
    equivalent move is to let any specification state carrying the chaos
    proposition match every implementation labeling.
    """

    def match(impl_labels: frozenset[str], spec_labels: frozenset[str]) -> bool:
        return chaos_proposition in spec_labels or impl_labels == spec_labels

    return match


def _check_compatible(impl: Automaton, spec: Automaton) -> None:
    if impl.inputs != spec.inputs or impl.outputs != spec.outputs:
        raise RefinementError(
            f"refinement between {impl.name!r} and {spec.name!r} needs identical signal sets; "
            f"got I={sorted(impl.inputs)}/{sorted(spec.inputs)}, "
            f"O={sorted(impl.outputs)}/{sorted(spec.outputs)}"
        )


# --------------------------------------------------------------------- simulation


def simulation_relation(
    impl: Automaton,
    spec: Automaton,
    *,
    label_match: LabelMatch = exact_labels,
) -> frozenset[tuple[State, State]]:
    """The greatest simulation relation of ``spec`` over ``impl``.

    ``(s, s')`` is in the result iff ``s'`` simulates ``s``: labels
    match and every move of ``s`` can be answered by ``s'`` with the
    same interaction into a related pair.
    """
    _check_compatible(impl, spec)
    relation = {
        (s, s2)
        for s in impl.states
        for s2 in spec.states
        if label_match(impl.labels(s), spec.labels(s2))
    }
    changed = True
    while changed:
        changed = False
        for pair in tuple(relation):
            s, s2 = pair
            for move in impl.transitions_from(s):
                answered = any(
                    reply.interaction == move.interaction and (move.target, reply.target) in relation
                    for reply in spec.transitions_from(s2)
                )
                if not answered:
                    relation.discard(pair)
                    changed = True
                    break
    return frozenset(relation)


def simulates(
    spec: Automaton,
    impl: Automaton,
    *,
    label_match: LabelMatch = exact_labels,
) -> bool:
    """``impl ≼ spec``: every initial impl state simulated by an initial spec state."""
    relation = simulation_relation(impl, spec, label_match=label_match)
    return all(any((q, q2) in relation for q2 in spec.initial) for q in impl.initial)


# --------------------------------------------------------------------- refinement


def _blocked(automaton: Automaton, state: State, universe: tuple[Interaction, ...]) -> set[Interaction]:
    enabled = automaton.enabled(state)
    return {interaction for interaction in universe if interaction not in enabled}


def _refinement_search(
    impl: Automaton,
    spec: Automaton,
    *,
    label_match: LabelMatch,
    universe: Iterable[Interaction] | None,
) -> Run | None:
    """Core subset-construction search.

    Returns ``None`` when ``impl ⊑ spec`` holds, otherwise a run of
    ``impl`` witnessing the violation (a run the specification cannot
    match, or a deadlock run the specification cannot refuse).
    """
    _check_compatible(impl, spec)
    if universe is None:
        candidates = tuple(sorted(impl.interactions | spec.interactions, key=Interaction.sort_key))
    else:
        candidates = tuple(sorted(set(universe), key=Interaction.sort_key))

    seen: set[tuple[State, frozenset[State]]] = set()
    queue: deque[tuple[State, frozenset[State], Run]] = deque()
    spec_initial = frozenset(spec.initial)
    for q in sorted(impl.initial, key=repr):
        key = (q, spec_initial)
        if key not in seen:
            seen.add(key)
            queue.append((q, spec_initial, Run(q)))

    while queue:
        impl_state, tracked, run = queue.popleft()
        # Condition 1: some trace-equal spec run ends in a label-matching state.
        if not any(label_match(impl.labels(impl_state), spec.labels(s2)) for s2 in tracked):
            return run
        # Condition 2, failures-style (footnote 4 relates deadlock runs to
        # CSP failures/refusals, and Lemma 1's proof needs this reading):
        # a single trace-equal spec state must refuse *everything* the
        # implementation state refuses — equivalently, offer no more than
        # the implementation state offers within the candidate universe.
        blocked = _blocked(impl, impl_state, candidates)
        if blocked:
            matched = any(
                all(t.interaction not in blocked for t in spec.transitions_from(s2))
                for s2 in tracked
            )
            if not matched:
                witness = sorted(blocked, key=Interaction.sort_key)[0]
                return run.block(witness)
        for move in impl.transitions_from(impl_state):
            next_tracked = frozenset(
                reply.target
                for s2 in tracked
                for reply in spec.transitions_from(s2)
                if reply.interaction == move.interaction
            )
            key = (move.target, next_tracked)
            if key not in seen:
                seen.add(key)
                queue.append((move.target, next_tracked, run.extend(move.interaction, move.target)))
    return None


def refines(
    impl: Automaton,
    spec: Automaton,
    *,
    label_match: LabelMatch = exact_labels,
    universe: Iterable[Interaction] | None = None,
) -> bool:
    """Decide ``impl ⊑ spec`` per Definition 4.

    ``universe`` bounds the interactions considered as candidates for
    blocked (deadlock-run) tails; it defaults to every interaction that
    occurs in either automaton.  Definition 2 technically quantifies over
    the full power-set alphabet, but an interaction occurring in neither
    automaton is blocked everywhere on both sides and can never separate
    them.
    """
    return _refinement_search(impl, spec, label_match=label_match, universe=universe) is None


def refinement_counterexample(
    impl: Automaton,
    spec: Automaton,
    *,
    label_match: LabelMatch = exact_labels,
    universe: Iterable[Interaction] | None = None,
) -> Run | None:
    """A run of ``impl`` that ``spec`` cannot match, or ``None``."""
    return _refinement_search(impl, spec, label_match=label_match, universe=universe)
