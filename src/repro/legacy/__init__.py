"""Executable legacy components: black-box harness and interfaces.

Wraps a concrete (hidden) behavior behind the execution/monitoring
protocol the paper assumes: reset, per-period stepping, port
observation, and state probes gated by instrumentation level with a
probe-effect model for live monitoring.
"""

from .component import Instrumentation, LegacyComponent, StepOutcome
from .interface import InterfaceDescription, interface_of

__all__ = [
    "LegacyComponent",
    "StepOutcome",
    "Instrumentation",
    "InterfaceDescription",
    "interface_of",
]
