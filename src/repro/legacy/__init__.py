"""Executable legacy components: black-box harness and interfaces.

Wraps a concrete (hidden) behavior behind the execution/monitoring
protocol the paper assumes: reset, per-period stepping, port
observation, and state probes gated by instrumentation level with a
probe-effect model for live monitoring.

:mod:`repro.legacy.remote` moves the same contract out of process: a
supervised subprocess host behind a length-prefixed frame protocol,
with real (kill-based) deadlines and a pre-forked instance pool.
"""

from .component import Instrumentation, LegacyComponent, StepOutcome
from .interface import InterfaceDescription, interface_of

#: Names re-exported lazily from :mod:`repro.legacy.remote` (PEP 562).
#: Lazy so ``python -m repro.legacy.remote`` — the component host entry
#: point — does not import the module twice (once via this package
#: ``__init__``, once as ``__main__``), which would trip runpy's
#: double-import warning in every spawned host.
_REMOTE_NAMES = frozenset(
    {
        "RemoteComponent",
        "RemotePolicy",
        "ComponentHost",
        "InstancePool",
        "rehost",
        "resolve_remote",
        "REMOTE_PROTOCOL_VERSION",
        "REMOTE_ENV",
    }
)


def __getattr__(name: str):
    if name in _REMOTE_NAMES:
        from . import remote

        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _REMOTE_NAMES)


__all__ = [
    "LegacyComponent",
    "StepOutcome",
    "Instrumentation",
    "InterfaceDescription",
    "interface_of",
    "RemoteComponent",
    "RemotePolicy",
    "ComponentHost",
    "InstancePool",
    "rehost",
    "resolve_remote",
    "REMOTE_PROTOCOL_VERSION",
    "REMOTE_ENV",
]
