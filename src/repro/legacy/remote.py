"""Out-of-process legacy components: a supervised subprocess ABI.

Everything else in :mod:`repro.legacy` executes the component *in
process*, which quietly weakens the paper's central premise: the legacy
component is a black box that can genuinely crash, stall, or babble.
This module restores the host/black-box boundary.  A component runs in
its own Python subprocess behind a narrow wire protocol mirroring the
:class:`~repro.legacy.component.LegacyComponent` contract, and the
driver side supervises it with *real* deadlines — a hung host is
``SIGKILL``-ed, not merely abandoned on a thread.

Wire protocol (``repro.remote/1``)
----------------------------------

Frames are length-prefixed JSON: a 4-byte big-endian byte count
followed by one sorted-key compact JSON object (UTF-8).  Requests carry
an ``op``; replies carry ``ok`` plus op-specific fields, and every
reply mirrors the host-side black-box counters so the proxy stays
bit-consistent with an in-process run.  The core operations:

``hello``
    Protocol-version handshake; returns the host's version, the
    component's structural :class:`~repro.legacy.interface.InterfaceDescription`
    (see :func:`interface_to_wire`), and whether a fault profile is
    armed host-side.  A version mismatch fails fast with
    :class:`~repro.errors.RemoteProtocolError`.
``step`` / ``reset`` / ``observe`` / ``shutdown``
    The executable contract: execute one period, restart, observe
    (counters, period, probe effect — with ``probe=true`` also the
    state via ``monitor_state``), and exit cleanly.
``load`` / ``instrument`` / ``arm`` / ``reseed`` / ``ping``
    Auxiliary operations: ship a serialized hidden automaton plus an
    optional :class:`~repro.testing.faults.FaultProfile` into a generic
    host (``--serve -``), forward instrumentation and fault-arming
    scopes (so seed-driven fault schedules consume RNG draws
    bit-identically across the wire), restart the fault schedule, and
    health-check pooled instances.

Supervision
-----------

:class:`RemoteComponent` maps real failures onto the existing taxonomy
so :class:`~repro.testing.robust.RobustExecutor` recovers from genuine
crashes exactly like injected ones (Lemma 6 preserved):

* per-step deadline expiry → the host is killed and
  :class:`~repro.errors.TestTimeoutError` is raised (a *preemptive*
  deadline — unlike the in-process cooperative step deadline, which can
  only observe a stall after the step returns);
* process exit / EOF / broken pipe →
  :class:`~repro.errors.RemoteCrashError` (a
  :class:`~repro.errors.FaultInjectionError`, hence retryable);
* garbage frames (bad length, undecodable JSON) → the host is killed
  and :class:`~repro.errors.RemoteProtocolError` is raised.

Every kill, respawn, and protocol violation emits a ``component.*``
progress event, a tracer span, and a flight-recorder anomaly (blackbox
dump).  A dead host respawns lazily on the next use, replaying the
proxy's instrumentation and arming scopes first.

:class:`InstancePool` keeps a bounded set of pre-forked warm hosts with
health-checked reuse, so workloads that need a fresh instance per run
skip the ~hundreds-of-milliseconds interpreter start.

See ``docs/remote.md`` for the frame grammar, the supervision state
machine, and pool sizing guidance.
"""

from __future__ import annotations

import json
import os
import select
import signal
import struct
import subprocess
import sys
import threading
import time
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from ..errors import (
    ExecutionError,
    ModelError,
    RemoteComponentError,
    RemoteCrashError,
    RemoteProtocolError,
    ReplayError,
    ReproError,
    SynthesisError,
    TestTimeoutError,
)
from .component import Instrumentation, LegacyComponent, StepOutcome
from .interface import InterfaceDescription, interface_of

__all__ = [
    "REMOTE_PROTOCOL_VERSION",
    "REMOTE_ENV",
    "MAX_FRAME_BYTES",
    "RemotePolicy",
    "resolve_remote",
    "FrameChannel",
    "ComponentHost",
    "RemoteComponent",
    "InstancePool",
    "rehost",
    "rehost_payload",
    "interface_to_wire",
    "interface_from_wire",
    "main",
]

#: Version tag negotiated by the ``hello`` handshake.  Bump on any
#: breaking change to frame layouts or operation semantics.
REMOTE_PROTOCOL_VERSION = 1

#: Environment variable turning on out-of-process execution suite-wide
#: (any value other than ``0``/``false``/``no``/``off`` selects the
#: default :class:`RemotePolicy`), mirroring ``REPRO_FAULT_SEED``.
REMOTE_ENV = "REPRO_REMOTE"

#: Upper bound on one frame body.  A length prefix beyond this is a
#: protocol violation, not an allocation request — garbage on the pipe
#: must never make the supervisor allocate gigabytes.
MAX_FRAME_BYTES = 1 << 24

_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode

_HEADER = struct.Struct(">I")


class _DeadlineExpired(Exception):
    """Internal: a frame read ran out of time (converted by the proxy)."""


# --------------------------------------------------------------------- wire


def interface_to_wire(interface: InterfaceDescription) -> dict:
    """Serialize an interface signature for the ``hello`` reply.

    States follow the persistence convention: strings travel losslessly,
    anything else is stringified via ``repr`` — the same rule
    :mod:`repro.persistence` applies, so a rehosted automaton and its
    interface agree on state identity.
    """
    initial = interface.initial_state
    return {
        "name": interface.name,
        "inputs": sorted(interface.inputs),
        "outputs": sorted(interface.outputs),
        "initial_state": initial if isinstance(initial, str) else repr(initial),
        "state_bound": interface.state_bound,
    }


def interface_from_wire(payload: dict) -> InterfaceDescription:
    """Rebuild an :class:`InterfaceDescription` from ``hello`` data.

    Inverse of :func:`interface_to_wire` for every interface whose
    states are strings (which rehosting enforces); validation — signal
    overlap, field types — happens in the dataclass itself.
    """
    if not isinstance(payload, dict):
        raise RemoteProtocolError(
            f"interface payload must be an object, got {type(payload).__name__}"
        )
    missing = {"name", "inputs", "outputs", "initial_state"} - set(payload)
    if missing:
        raise RemoteProtocolError(f"interface payload lacks fields {sorted(missing)}")
    try:
        return InterfaceDescription(
            name=payload["name"],
            inputs=frozenset(payload["inputs"]),
            outputs=frozenset(payload["outputs"]),
            initial_state=payload["initial_state"],
            state_bound=payload.get("state_bound"),
        )
    except (ModelError, TypeError) as error:
        raise RemoteProtocolError(f"malformed interface payload: {error}") from error


class FrameChannel:
    """Length-prefixed JSON frames over a pair of raw file descriptors.

    The read side buffers in user space and waits through ``select``,
    so a deadline bounds every read *and* an EOF (host death) wakes a
    blocked reader immediately.  Used symmetrically: the driver wraps
    the subprocess pipes, the host wraps its own stdio, and tests wrap
    ``os.pipe()`` pairs in process.
    """

    def __init__(self, read_fd: int, write_fd: int):
        self._read_fd = read_fd
        self._write_fd = write_fd
        self._buffer = bytearray()

    def send(self, payload: dict) -> None:
        """Write one frame; a broken pipe means the peer died."""
        body = _ENCODE(payload).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise RemoteProtocolError(
                f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
            )
        data = _HEADER.pack(len(body)) + body
        view = memoryview(data)
        try:
            while view:
                written = os.write(self._write_fd, view)
                view = view[written:]
        except (BrokenPipeError, OSError) as error:
            raise RemoteCrashError(
                f"component host pipe closed while sending {payload.get('op')!r}: {error}"
            ) from None

    def receive(self, timeout: float | None = None) -> dict:
        """Read one frame, waiting at most ``timeout`` seconds.

        Raises :class:`~repro.errors.RemoteCrashError` on EOF,
        :class:`~repro.errors.RemoteProtocolError` on garbage, and the
        internal deadline marker when the timeout expires.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        header = self._take(_HEADER.size, deadline)
        (length,) = _HEADER.unpack(header)
        if length == 0 or length > MAX_FRAME_BYTES:
            raise RemoteProtocolError(
                f"frame length prefix {length} is outside (0, {MAX_FRAME_BYTES}]"
            )
        body = self._take(length, deadline)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise RemoteProtocolError(f"undecodable frame body: {error}") from None
        if not isinstance(payload, dict):
            raise RemoteProtocolError(
                f"frame body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    def _take(self, count: int, deadline: float | None) -> bytes:
        while len(self._buffer) < count:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise _DeadlineExpired()
                ready, _, _ = select.select([self._read_fd], [], [], remaining)
                if not ready:
                    raise _DeadlineExpired()
            chunk = os.read(self._read_fd, 65536)
            if not chunk:
                raise RemoteCrashError("component host closed the pipe (EOF)")
            self._buffer.extend(chunk)
        taken = bytes(self._buffer[:count])
        del self._buffer[:count]
        return taken


# --------------------------------------------------------------------- host

#: Error-name wire mapping: the host replies with the nearest taxonomy
#: class name; unknown names degrade to plain ``ExecutionError``.
_ERROR_CLASSES = {
    "ExecutionError": ExecutionError,
    "ReplayError": ReplayError,
    "ModelError": ModelError,
    "RemoteProtocolError": RemoteProtocolError,
    "RemoteCrashError": RemoteCrashError,
    "RemoteComponentError": RemoteComponentError,
}


def _error_name(error: Exception) -> str:
    from ..errors import FaultInjectionError

    if isinstance(error, RemoteProtocolError):
        return "RemoteProtocolError"
    if isinstance(error, FaultInjectionError):
        return "FaultInjectionError"
    if isinstance(error, ReplayError):
        return "ReplayError"
    if isinstance(error, ModelError):
        return "ModelError"
    return "ExecutionError"


def _wire_error_class(name: str):
    from ..errors import FaultInjectionError

    if name == "FaultInjectionError":
        return FaultInjectionError
    return _ERROR_CLASSES.get(name, ExecutionError)


def _state_wire(state) -> str:
    return state if isinstance(state, str) else repr(state)


class ComponentHost:
    """Serves one component over a :class:`FrameChannel`.

    Normally run as ``python -m repro.legacy.remote --serve <factory>``
    in a subprocess, but fully usable in process over ``os.pipe()``
    pairs — which is how the protocol unit tests drive it.

    Parameters
    ----------
    component:
        The component to serve, or ``None`` to await a ``load`` frame
        (the ``--serve -`` mode used by :func:`rehost`).  A bare
        :class:`~repro.automata.automaton.Automaton` is wrapped in a
        fresh :class:`~repro.legacy.component.LegacyComponent`.
    fault_profile:
        Optional :class:`~repro.testing.faults.FaultProfile` to arm
        *inside the host process*: the component is wrapped in a
        :class:`~repro.testing.faults.FaultyComponent` here, so
        seed-driven crash-resets and hangs hit the real subprocess while
        keeping the exact in-process draw schedule.
    forced_version:
        Overrides the advertised protocol version (handshake tests only).
    """

    def __init__(self, component=None, *, fault_profile=None, forced_version: int | None = None):
        self.component = None
        self.protocol_version = (
            REMOTE_PROTOCOL_VERSION if forced_version is None else forced_version
        )
        self._instrument_scopes: list = []
        self._armed_scopes: list = []
        if component is not None:
            self._install(component, fault_profile)

    def _install(self, component, fault_profile) -> None:
        from ..obs.tracer import NULL_TRACER
        from ..testing.faults import FaultyComponent

        if not hasattr(component, "step"):
            component = LegacyComponent(component)
        if fault_profile is not None and fault_profile.active:
            # NULL_TRACER explicitly: the host must never pick up the
            # driver's REPRO_TRACE file and corrupt it from a second
            # process.
            component = FaultyComponent.wrap(component, fault_profile, tracer=NULL_TRACER)
        self.component = component
        self._instrument_scopes = []
        self._armed_scopes = []

    # ------------------------------------------------------------- serving

    def serve(self, channel: FrameChannel) -> int:
        """Dispatch frames until ``shutdown``, EOF, or a garbage frame."""
        while True:
            try:
                request = channel.receive(None)
            except RemoteCrashError:
                return 0  # driver went away: exit quietly
            except RemoteProtocolError:
                return 2  # desynchronized stream: cannot reply safely
            op = request.get("op")
            if op == "shutdown":
                channel.send({"ok": True})
                return 0
            try:
                reply = self._dispatch(op, request)
            except ReproError as error:
                reply = {"ok": False, "error": _error_name(error), "message": str(error)}
            channel.send(reply)

    def _status(self) -> dict:
        component = self.component
        return {
            "counters": [
                component.steps_executed,
                component.resets,
                component.state_probes,
            ],
            "period": component.period,
        }

    def _require_component(self):
        if self.component is None:
            raise RemoteProtocolError("no component loaded yet (send a 'load' frame first)")
        return self.component

    def _dispatch(self, op, request: dict) -> dict:
        if op == "hello":
            return self._hello(request)
        if op == "load":
            return self._load(request)
        if op == "ping":
            return {"ok": True, "pong": True, "loaded": self.component is not None}
        component = self._require_component()
        if op == "step":
            outcome = component.step(frozenset(request.get("inputs", ())))
            return {
                "ok": True,
                "period": outcome.period,
                "inputs": sorted(outcome.inputs),
                "outputs": sorted(outcome.outputs),
                "blocked": outcome.blocked,
                **self._status(),
            }
        if op == "reset":
            component.reset()
            return {"ok": True, **self._status()}
        if op == "observe":
            return self._observe(bool(request.get("probe", False)))
        if op == "instrument":
            scope = component.instrumented(
                Instrumentation(request["level"]), live=bool(request["live"])
            )
            scope.__enter__()
            self._instrument_scopes.append(scope)
            return {"ok": True, "depth": len(self._instrument_scopes)}
        if op == "uninstrument":
            if not self._instrument_scopes:
                raise RemoteProtocolError("uninstrument without a matching instrument")
            self._instrument_scopes.pop().__exit__(None, None, None)
            return {"ok": True, "depth": len(self._instrument_scopes)}
        if op == "arm":
            arm = getattr(component, "inject_faults", None)
            scope = arm() if arm is not None else None
            if scope is not None:
                scope.__enter__()
            self._armed_scopes.append(scope)
            return {"ok": True, "depth": len(self._armed_scopes), **self._fault_status()}
        if op == "disarm":
            if not self._armed_scopes:
                raise RemoteProtocolError("disarm without a matching arm")
            scope = self._armed_scopes.pop()
            if scope is not None:
                scope.__exit__(None, None, None)
            return {"ok": True, "depth": len(self._armed_scopes), **self._fault_status()}
        if op == "reseed":
            reseed = getattr(component, "reseed", None)
            if reseed is not None:
                reseed(request.get("seed"))
            return {"ok": True}
        raise RemoteProtocolError(f"unknown operation {op!r}")

    def _hello(self, request: dict) -> dict:
        component = self._require_component()
        version = request.get("version")
        if version != self.protocol_version:
            raise RemoteProtocolError(
                f"protocol version mismatch: driver speaks {version!r}, "
                f"host speaks {self.protocol_version}"
            )
        return {
            "ok": True,
            "version": self.protocol_version,
            "interface": interface_to_wire(interface_of(component)),
            "fault_active": bool(getattr(component, "fault_injection_active", False)),
            **self._status(),
        }

    def _load(self, request: dict) -> dict:
        from ..persistence import automaton_from_dict
        from ..testing.faults import FaultProfile

        fault = request.get("fault")
        profile = FaultProfile.from_wire(fault) if fault is not None else None
        hidden = automaton_from_dict(request["automaton"])
        component = LegacyComponent(hidden, name=request.get("name", hidden.name))
        self._install(component, profile)
        return {"ok": True, **self._status()}

    def _fault_status(self) -> dict:
        component = self.component
        counts = getattr(component, "fault_counts", None)
        return {
            "fault_active": bool(getattr(component, "fault_injection_active", False)),
            "fault_counts": dict(counts) if counts else None,
        }

    def _observe(self, probe: bool) -> dict:
        component = self.component
        reply = {
            "ok": True,
            "probe_effect_active": bool(component.probe_effect_active),
            **self._fault_status(),
        }
        if probe:
            reply["state"] = _state_wire(component.monitor_state())
        reply.update(self._status())
        return reply


# ------------------------------------------------------------------- policy


@dataclass(frozen=True)
class RemotePolicy:
    """Supervision knobs for out-of-process execution.

    Parameters
    ----------
    step_deadline:
        Wall-clock bound on every single operation round-trip (seconds).
        Expiry kills the host process and raises
        :class:`~repro.errors.TestTimeoutError` — this is the *real*
        per-step deadline the in-process path cannot enforce.  ``None``
        disables it (a truly hung host then blocks until killed from
        outside).
    spawn_timeout:
        Bound on process start plus the ``load``/``hello`` handshake.
    pool_size:
        Default bound for :class:`InstancePool` (number of warm hosts
        kept alive between leases).
    """

    step_deadline: float | None = 5.0
    spawn_timeout: float = 30.0
    pool_size: int = 2

    def __post_init__(self) -> None:
        if self.step_deadline is not None and self.step_deadline <= 0:
            raise SynthesisError(
                f"step_deadline must be positive or None, got {self.step_deadline!r}"
            )
        if self.spawn_timeout <= 0:
            raise SynthesisError(f"spawn_timeout must be positive, got {self.spawn_timeout!r}")
        if not isinstance(self.pool_size, int) or isinstance(self.pool_size, bool) or self.pool_size < 1:
            raise SynthesisError(f"pool_size must be a positive integer, got {self.pool_size!r}")


def resolve_remote(value) -> RemotePolicy | None:
    """Resolve the ``remote`` knob: policy, boolean, or environment.

    Mirrors the other tri-state knobs: an explicit
    :class:`RemotePolicy` wins, ``True`` selects the defaults,
    ``False`` forces in-process execution, and ``None`` defers to
    :data:`REMOTE_ENV`.
    """
    if isinstance(value, RemotePolicy):
        return value
    if value is True:
        return RemotePolicy()
    if value is False:
        return None
    if value is not None:
        raise SynthesisError(
            f"remote must be a RemotePolicy, a bool, or None, got {type(value).__name__}"
        )
    raw = os.environ.get(REMOTE_ENV, "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return None
    return RemotePolicy()


# -------------------------------------------------------------------- proxy


class RemoteComponent:
    """A supervised subprocess proxy satisfying the component contract.

    Spawns ``python -m repro.legacy.remote --serve <spec>`` (or the
    generic ``-`` host fed by a ``load`` frame), performs the ``hello``
    handshake, and forwards every contract operation as one frame
    round-trip under :class:`RemotePolicy` deadlines.  The black-box
    counters (``steps_executed``, ``resets``, ``state_probes``) mirror
    the host's absolute values from every reply.

    Failure mapping and lifecycle events are described in the module
    docstring; ``remote_stats`` carries the proxy-side lifecycle
    counters (``component_spawns`` / ``component_kills`` /
    ``component_respawns``).

    Construction fails fast — :class:`~repro.errors.RemoteProtocolError`
    on a version mismatch, :class:`~repro.errors.TestTimeoutError` when
    the handshake exceeds ``spawn_timeout``.
    """

    def __init__(
        self,
        spec: str | None = None,
        *,
        payload: dict | None = None,
        policy: RemotePolicy | None = None,
        tracer=None,
        flight=None,
        events=None,
    ):
        from ..obs.flight import resolve_flight_recorder
        from ..obs.tracer import resolve_tracer

        if (spec is None) == (payload is None):
            raise SynthesisError("exactly one of spec= or payload= must be given")
        self._spec = spec
        self._payload = payload
        self.policy = policy if policy is not None else RemotePolicy()
        self._tracer = resolve_tracer(tracer)
        self._flight = resolve_flight_recorder(flight)
        self._events = events
        self._lock = threading.RLock()
        self._process: subprocess.Popen | None = None
        self._channel: FrameChannel | None = None
        self._closed = False
        self._death_reported = False
        self._instrument_stack: list[tuple[str, bool]] = []
        self._armed_depth = 0
        # Black-box counters, mirrored from host replies.
        self.steps_executed = 0
        self.resets = 0
        self.state_probes = 0
        self._period = 0
        self._fault_active = False
        self._fault_counts: dict | None = None
        self._probe_effect = False
        self.remote_stats = {
            "component_spawns": 0,
            "component_kills": 0,
            "component_respawns": 0,
        }
        self.name = payload.get("name", spec) if payload is not None else spec
        self._launch(respawn=False)

    # ------------------------------------------------------------ lifecycle

    def _notify(self, name: str, **payload) -> None:
        if self._events is not None:
            self._events(name, **payload)
        elif self._flight.enabled:
            self._flight.record(name, **payload)

    def _spawn_process(self) -> None:
        command = [sys.executable, "-m", "repro.legacy.remote", "--serve", self._spec or "-"]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        self._process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            close_fds=True,
        )
        self._channel = FrameChannel(
            self._process.stdout.fileno(), self._process.stdin.fileno()
        )

    def _launch(self, *, respawn: bool) -> None:
        span = "component.respawn" if respawn else "component.spawn"
        with self._tracer.span(span, component=str(self.name)):
            self._spawn_process()
            timeout = self.policy.spawn_timeout
            if self._payload is not None:
                self._request({"op": "load", **self._payload}, timeout=timeout)
            hello = self._request(
                {"op": "hello", "version": REMOTE_PROTOCOL_VERSION}, timeout=timeout
            )
        if hello.get("version") != REMOTE_PROTOCOL_VERSION:
            message = (
                f"component host {self.name!r} speaks protocol "
                f"{hello.get('version')!r}, driver speaks {REMOTE_PROTOCOL_VERSION}"
            )
            self._kill("protocol-version", message=message)
            raise RemoteProtocolError(message)
        interface = interface_from_wire(hello["interface"])
        self.name = interface.name
        self.inputs = interface.inputs
        self.outputs = interface.outputs
        self.initial_state = interface.initial_state
        self.state_bound = interface.state_bound
        self._fault_active = bool(hello.get("fault_active", False))
        if respawn:
            # Reconcile the host with the proxy's live scopes: a respawned
            # process starts bare, but the caller may be inside
            # instrumented()/inject_faults() blocks.
            for level, live in self._instrument_stack:
                self._request(
                    {"op": "instrument", "level": level, "live": live},
                    timeout=self.policy.step_deadline,
                )
            for _ in range(self._armed_depth):
                self._request({"op": "arm"}, timeout=self.policy.step_deadline)
            self.remote_stats["component_respawns"] += 1
            self._notify("component.respawn", component=str(self.name), pid=self.pid)
            self._flight.anomaly("remote_respawn", component=str(self.name), pid=self.pid)
        else:
            self.remote_stats["component_spawns"] += 1
            self._notify("component.spawn", component=str(self.name), pid=self.pid)
        self._death_reported = False

    def _reap(self) -> None:
        process = self._process
        self._process = None
        self._channel = None
        if process is None:
            return
        for stream in (process.stdin, process.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - SIGKILL always lands
            pass

    def _kill(self, reason: str, **context) -> None:
        """SIGKILL the host (if alive), reap it, and record the anomaly."""
        process = self._process
        alive = process is not None and process.poll() is None
        if alive:
            with self._tracer.span("component.kill", component=str(self.name), reason=reason):
                try:
                    process.kill()
                except OSError:  # pragma: no cover - raced with exit
                    pass
            self.remote_stats["component_kills"] += 1
            self._notify("component.kill", component=str(self.name), reason=reason)
            self._flight.anomaly(
                "remote_kill", component=str(self.name), reason=reason, **context
            )
        self._reap()

    def interrupt(self, reason: str = "test-deadline") -> None:
        """Hard-kill the host from *outside* the proxy's lock.

        Called by :class:`~repro.testing.robust.RobustExecutor` when the
        per-test deadline expires while a worker thread is still blocked
        on a frame read: the SIGKILL turns that blocked read into an
        immediate EOF, so the deadline genuinely preempts the process
        instead of abandoning a thread.
        """
        process = self._process
        if process is None or process.poll() is not None:
            return
        with self._tracer.span("component.kill", component=str(self.name), reason=reason):
            try:
                os.kill(process.pid, signal.SIGKILL)
            except OSError:  # pragma: no cover - raced with exit
                return
        self.remote_stats["component_kills"] += 1
        self._death_reported = True
        self._notify("component.kill", component=str(self.name), reason=reason)
        self._flight.anomaly("remote_kill", component=str(self.name), reason=reason)

    def close(self) -> None:
        """Shut the host down (politely, then by force) and seal the proxy."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            process = self._process
            if process is not None and process.poll() is None and self._channel is not None:
                try:
                    self._channel.send({"op": "shutdown"})
                    self._channel.receive(1.0)
                except (RemoteComponentError, _DeadlineExpired, OSError):
                    try:
                        process.kill()
                    except OSError:  # pragma: no cover - raced with exit
                        pass
            self._reap()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "RemoteComponent":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def pid(self) -> int | None:
        """The host process id, or ``None`` when no process is alive."""
        return self._process.pid if self._process is not None else None

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.poll() is None

    def ping(self) -> bool:
        """Health-check without side effects (used by the pool)."""
        with self._lock:
            if self._closed or not self.alive:
                return False
            try:
                self._request({"op": "ping"}, timeout=self.policy.step_deadline or 5.0)
                return True
            except (ExecutionError, TestTimeoutError):
                return False

    # --------------------------------------------------------------- framing

    def _ensure_alive(self) -> None:
        if self._closed:
            raise ExecutionError(f"remote component {self.name!r} is closed")
        if self._process is None or self._process.poll() is not None:
            exit_code = self._process.poll() if self._process is not None else None
            reported = self._death_reported
            self._reap()
            self._launch(respawn=True)
            if not reported:
                # The host died *between* operations — silently carrying
                # on with the fresh (reset) instance could hand a
                # mid-test caller outputs from the wrong state, so the
                # death must surface as a retryable fault.  Deaths
                # already reported (deadline kill, mid-request crash)
                # respawn quietly: their exception did the surfacing.
                raise RemoteCrashError(
                    f"component host {self.name!r} died between operations "
                    f"(exit code {exit_code}); a fresh host is up for the retry"
                )

    def _request(self, payload: dict, *, timeout: float | None) -> dict:
        """One raw frame round-trip on the current process (no respawn)."""
        channel = self._channel
        op = payload.get("op")
        try:
            channel.send(payload)
            reply = channel.receive(timeout)
        except _DeadlineExpired:
            message = (
                f"remote {op!r} on {self.name!r} exceeded the "
                f"{timeout:.3f}s deadline; host (pid {self.pid}) killed"
            )
            self._kill("step-deadline", op=op, deadline=timeout)
            self._death_reported = True
            raise TestTimeoutError(message) from None
        except RemoteCrashError as error:
            exit_code = self._process.poll() if self._process is not None else None
            self._flight.anomaly(
                "remote_crash",
                component=str(self.name),
                op=op,
                exit_code=exit_code,
            )
            self._reap()
            self._death_reported = True
            raise RemoteCrashError(
                f"component host {self.name!r} died during {op!r} "
                f"(exit code {exit_code}): {error}"
            ) from None
        except RemoteProtocolError as error:
            self._notify("component.violation", component=str(self.name), op=op)
            self._kill("protocol-violation", op=op, detail=str(error))
            self._death_reported = True
            raise
        if not reply.get("ok"):
            name = reply.get("error", "ExecutionError")
            message = reply.get("message", f"remote {op!r} failed")
            if name == "RemoteProtocolError":
                self._notify("component.violation", component=str(self.name), op=op)
                self._kill("protocol-violation", op=op, detail=message)
                self._death_reported = True
            raise _wire_error_class(name)(message)
        self._absorb(reply)
        return reply

    def _absorb(self, reply: dict) -> None:
        counters = reply.get("counters")
        if counters is not None:
            self.steps_executed, self.resets, self.state_probes = counters
        if "period" in reply:
            self._period = reply["period"]
        if "probe_effect_active" in reply:
            self._probe_effect = bool(reply["probe_effect_active"])
        if "fault_counts" in reply and reply["fault_counts"] is not None:
            self._fault_counts = dict(reply["fault_counts"])

    def _call(self, payload: dict, *, timeout: float | None = None) -> dict:
        with self._lock:
            self._ensure_alive()
            limit = timeout if timeout is not None else self.policy.step_deadline
            return self._request(payload, timeout=limit)

    # -------------------------------------------------------------- contract

    def step(self, inputs: Iterable[str] = ()) -> StepOutcome:
        offered = inputs if type(inputs) is frozenset else frozenset(inputs)
        reply = self._call({"op": "step", "inputs": sorted(offered)})
        return StepOutcome(
            reply["period"],
            frozenset(reply["inputs"]),
            frozenset(reply["outputs"]),
            reply["blocked"],
        )

    def reset(self) -> None:
        self._call({"op": "reset"})

    @property
    def period(self) -> int:
        """The host's period as of the last reply (skew included)."""
        return self._period

    def monitor_state(self):
        reply = self._call({"op": "observe", "probe": True})
        return reply["state"]

    @property
    def probe_effect_active(self) -> bool:
        self._call({"op": "observe", "probe": False})
        return self._probe_effect

    @contextmanager
    def instrumented(self, level: Instrumentation, *, live: bool):
        level = level if isinstance(level, Instrumentation) else Instrumentation(level)
        with self._lock:
            self._call({"op": "instrument", "level": level.value, "live": live})
            self._instrument_stack.append((level.value, live))
        try:
            yield self
        finally:
            with self._lock:
                self._instrument_stack.pop()
                if self.alive:
                    try:
                        self._request(
                            {"op": "uninstrument"}, timeout=self.policy.step_deadline
                        )
                    except (ExecutionError, TestTimeoutError):
                        pass  # host lost: the respawn handshake reconciles

    # ----------------------------------------------------------------- chaos

    @property
    def fault_injection_active(self) -> bool:
        """Is a fault profile armed *host-side*?

        Mirrors the host's answer from the handshake, so the fault-free
        remote path keeps validation off and replay/test counters
        bit-identical to in-process execution.  A genuine crash still
        degrades soundly: it raises (aborting the attempt) instead of
        ever producing a verdict.
        """
        return self._fault_active

    @contextmanager
    def inject_faults(self):
        """Forward an arming scope to the host (no-op when it has none)."""
        with self._lock:
            self._call({"op": "arm"})
            self._armed_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._armed_depth -= 1
                if self.alive:
                    try:
                        self._request({"op": "disarm"}, timeout=self.policy.step_deadline)
                    except (ExecutionError, TestTimeoutError):
                        pass  # host lost: the respawn handshake reconciles

    @property
    def fault_counts(self) -> dict | None:
        """Host-side fault tallies (refreshed best-effort)."""
        if self._fault_active:
            try:
                self._call({"op": "observe", "probe": False})
            except (ExecutionError, TestTimeoutError):
                pass
        return self._fault_counts

    @property
    def faults_injected(self) -> int:
        counts = self.fault_counts
        return sum(counts.values()) if counts else 0

    def reseed(self, seed: int | None = None) -> None:
        self._call({"op": "reseed", "seed": seed})

    def __repr__(self) -> str:
        return (
            f"RemoteComponent(name={self.name!r}, pid={self.pid}, "
            f"alive={self.alive}, fault_active={self._fault_active})"
        )


# --------------------------------------------------------------------- pool


class InstancePool:
    """A bounded pool of pre-forked, warm component hosts.

    Spawning a host costs a full interpreter start (hundreds of
    milliseconds); re-leasing a warm one costs a ``ping`` plus a
    ``reset`` (well under a millisecond).  The pool pre-forks
    ``size`` hosts up front, health-checks each instance on
    :meth:`acquire` (a dead host is discarded and replaced lazily —
    counted in ``pool_respawns``), and :meth:`release` resets a healthy
    instance back into the free list, killing it instead when the pool
    is already full.

    Gauges (``pool_size``, ``pool_respawns``, ``pool_kills``, plus
    ``pool_spawns``/``pool_reuses``) publish through
    :meth:`publish_to` into a :class:`repro.obs.MetricsRegistry`.
    """

    def __init__(
        self,
        source,
        *,
        size: int | None = None,
        policy: RemotePolicy | None = None,
        fault_profile=None,
        tracer=None,
        flight=None,
        events=None,
    ):
        self.policy = policy if policy is not None else RemotePolicy()
        self.size = size if size is not None else self.policy.pool_size
        if not isinstance(self.size, int) or isinstance(self.size, bool) or self.size < 1:
            raise SynthesisError(f"pool size must be a positive integer, got {self.size!r}")
        if isinstance(source, str):
            self._spec: str | None = source
            self._payload: dict | None = None
            if fault_profile is not None:
                raise SynthesisError(
                    "fault_profile only applies to rehosted components; "
                    "factory-served hosts arm faults via --fault-seed / REPRO_FAULT_SEED"
                )
        else:
            self._spec = None
            self._payload = rehost_payload(source, fault_profile)
        self._tracer = tracer
        self._flight = flight
        self._events = events
        self._lock = threading.Lock()
        self._closed = False
        self._leased: set[RemoteComponent] = set()
        self.pool_spawns = 0
        self.pool_reuses = 0
        self.pool_respawns = 0
        self.pool_kills = 0
        self._free: list[RemoteComponent] = [self._spawn() for _ in range(self.size)]

    def _spawn(self) -> RemoteComponent:
        self.pool_spawns += 1
        return RemoteComponent(
            self._spec,
            payload=self._payload,
            policy=self.policy,
            tracer=self._tracer,
            flight=self._flight,
            events=self._events,
        )

    def acquire(self) -> RemoteComponent:
        """Lease a healthy instance, replacing dead ones lazily."""
        with self._lock:
            if self._closed:
                raise SynthesisError("the instance pool is closed")
            while self._free:
                instance = self._free.pop()
                if instance.ping():
                    self.pool_reuses += 1
                    self._leased.add(instance)
                    return instance
                # Health check failed: the warm host died while idle.
                instance.close()
                self.pool_kills += 1
                self.pool_respawns += 1
            instance = self._spawn()
            self._leased.add(instance)
            return instance

    def release(self, instance: RemoteComponent) -> None:
        """Return a lease; unhealthy or surplus instances are killed."""
        with self._lock:
            self._leased.discard(instance)
            if not self._closed and len(self._free) < self.size and instance.alive:
                try:
                    instance.reset()
                except (ExecutionError, TestTimeoutError):
                    instance.close()
                    self.pool_kills += 1
                    return
                self._free.append(instance)
                return
            if instance.alive:
                self.pool_kills += 1
            instance.close()

    @contextmanager
    def lease(self):
        """``with pool.lease() as component: ...`` acquire/release scope."""
        instance = self.acquire()
        try:
            yield instance
        finally:
            self.release(instance)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for instance in (*self._free, *self._leased):
                instance.close()
            self._free = []
            self._leased = set()

    def __enter__(self) -> "InstancePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def warm(self) -> int:
        """Instances currently idle in the free list."""
        return len(self._free)

    @property
    def stats(self) -> dict[str, int]:
        """The pool gauges (stable names, pinned by contract tests)."""
        return {
            "pool_size": len(self._free) + len(self._leased),
            "pool_spawns": self.pool_spawns,
            "pool_reuses": self.pool_reuses,
            "pool_respawns": self.pool_respawns,
            "pool_kills": self.pool_kills,
        }

    def publish_to(self, registry) -> None:
        """Set the pool gauges on a :class:`repro.obs.MetricsRegistry`."""
        for name, value in self.stats.items():
            registry.set_gauge(name, value)


# ------------------------------------------------------------------ rehost


def rehost_payload(component, fault_profile=None) -> dict:
    """The ``load`` frame shipping an in-process component to a host.

    Unwraps a :class:`~repro.testing.faults.FaultyComponent` (its
    profile moves to the host so injection happens inside the real
    process), serializes the hidden automaton via
    :mod:`repro.persistence`, and refuses components whose states are
    not strings — stringifying them would silently change the learned
    state identities, and refusing beats diverging.
    """
    from ..persistence import automaton_to_dict
    from ..testing.faults import FaultyComponent

    if isinstance(component, FaultyComponent):
        if fault_profile is None:
            fault_profile = component.profile
        component = component.inner
    if not hasattr(component, "step"):
        component = LegacyComponent(component)
    hidden = getattr(component, "_hidden", None)
    if hidden is None:
        raise SynthesisError(
            f"component {getattr(component, 'name', component)!r} is not backed by a "
            "hidden automaton and cannot be rehosted; serve custom components "
            "directly via ComponentHost / --serve <factory>"
        )
    non_str = sorted(repr(state) for state in hidden.states if not isinstance(state, str))
    if non_str:
        raise SynthesisError(
            f"component {component.name!r} has non-string states {non_str[:3]}; "
            "the wire protocol would stringify them and change learned state "
            "identities — rename the states or serve via a factory spec"
        )
    fault = (
        fault_profile.as_wire()
        if fault_profile is not None and fault_profile.active
        else None
    )
    return {
        "automaton": automaton_to_dict(hidden),
        "name": component.name,
        "fault": fault,
    }


def rehost(
    component,
    policy: RemotePolicy | None = None,
    *,
    fault_profile=None,
    tracer=None,
    flight=None,
    events=None,
) -> RemoteComponent:
    """Wrap an in-process component as a supervised subprocess.

    The demo adapter behind ``SynthesisSettings(remote=...)``: the
    component's hidden automaton travels to a generic host in a
    ``load`` frame and the returned :class:`RemoteComponent` satisfies
    the same contract, with verdicts bit-identical to in-process
    execution on fault-free runs.
    """
    return RemoteComponent(
        payload=rehost_payload(component, fault_profile),
        policy=policy,
        tracer=tracer,
        flight=flight,
        events=events,
    )


# --------------------------------------------------------------------- main


def _resolve_factory(spec: str):
    """Import ``module:attr`` and call it if callable."""
    import importlib

    module_name, _, attribute = spec.partition(":")
    if not module_name or not attribute:
        raise SynthesisError(
            f"factory spec must look like 'package.module:callable', got {spec!r}"
        )
    module = importlib.import_module(module_name)
    target = module
    for part in attribute.split("."):
        target = getattr(target, part)
    return target() if callable(target) else target


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.legacy.remote --serve <factory>`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.legacy.remote",
        description="Serve a legacy component over the repro.remote/1 frame protocol.",
    )
    parser.add_argument(
        "--serve",
        required=True,
        metavar="FACTORY",
        help="'package.module:callable' producing a component (or an automaton), "
        "or '-' to await a load frame on stdin",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="arm the mild chaos profile inside this host process "
        "(REPRO_FAULT_SEED works without the flag; an explicit fault "
        "profile in a load frame wins over both)",
    )
    parser.add_argument(
        "--force-protocol-version", type=int, default=None, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    # Claim the frame channel before any user code can print: stray
    # stdout writes (a chatty factory, a debug print) must go to stderr,
    # never corrupt the frame stream.
    frame_out = os.dup(sys.stdout.fileno())
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    sys.stdout = sys.stderr
    channel = FrameChannel(sys.stdin.fileno(), frame_out)

    component = None
    profile = None
    if args.serve != "-":
        from ..testing.faults import FaultProfile

        component = _resolve_factory(args.serve)
        if args.fault_seed is not None:
            profile = FaultProfile.mild(args.fault_seed)
        else:
            profile = FaultProfile.from_env()
    host = ComponentHost(
        component,
        fault_profile=profile,
        forced_version=args.force_protocol_version,
    )
    return host.serve(channel)


if __name__ == "__main__":
    sys.exit(main())
