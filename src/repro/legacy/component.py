"""The legacy component under integration: an executable black box.

The paper's legacy component is a deterministic software component with
hidden internals: only its structural interface is known, and it can be
*executed* — fed input messages period by period and observed at its
ports.  This module wraps a hidden automaton behind exactly that
protocol.  The synthesis loop never inspects the hidden automaton; the
access-counting attributes let tests assert black-box discipline.

Instrumentation (§5): observing messages at the ports is always
possible (``MINIMAL``); observing the *state* additionally requires
``FULL`` instrumentation.  Running fully instrumented **live** suffers
the probe effect [42] — here modeled as a cumulative timing skew per
state probe, so live-full timing records are wrong.  Deterministic
replay (``live=False``) re-executes a recorded run offline where probes
are free, which is precisely why the paper's two-phase record/replay
scheme exists.
"""

from __future__ import annotations

from collections.abc import Iterable
from contextlib import contextmanager
from enum import Enum

from ..automata.automaton import Automaton, State
from ..automata.interaction import Interaction
from ..errors import ExecutionError, ModelError

__all__ = ["Instrumentation", "StepOutcome", "LegacyComponent"]


class Instrumentation(Enum):
    """How deeply the running component is instrumented."""

    MINIMAL = "minimal"  # port messages and period numbers only
    FULL = "full"  # additionally state changes and per-event timing


class StepOutcome:
    """The observable result of executing one period.

    ``blocked`` means the component had no reaction to the offered
    inputs in its current state — the attempted interaction deadlocked
    (Definition 2's blocked tail); the component's state is unchanged.

    A plain slots class rather than a dataclass: one instance is built
    per executed period, which the synthesis loop does tens of
    thousands of times per run.
    """

    __slots__ = ("period", "inputs", "outputs", "blocked")

    def __init__(self, period: int, inputs: frozenset[str], outputs: frozenset[str], blocked: bool):
        self.period = period
        self.inputs = inputs
        self.outputs = outputs
        self.blocked = blocked

    @property
    def interaction(self) -> Interaction:
        return Interaction(self.inputs, self.outputs)

    def __repr__(self) -> str:
        return (
            f"StepOutcome(period={self.period}, inputs={sorted(self.inputs)}, "
            f"outputs={sorted(self.outputs)}, blocked={self.blocked})"
        )


class LegacyComponent:
    """An executable, strongly deterministic, hidden-state component.

    Parameters
    ----------
    hidden:
        The concrete behavior ``M_r``.  It must be strongly
        deterministic — a unique reaction (outputs and successor) per
        (state, inputs) pair — because §4.3 requires the implementation
        to exclude "any non-determinism or pseudo non-determinism".
    name:
        Component name used in reports.
    """

    def __init__(self, hidden: Automaton, *, name: str | None = None):
        if len(hidden.initial) != 1:
            raise ModelError(f"legacy component {hidden.name!r} must have exactly one initial state")
        if not hidden.is_strongly_deterministic():
            raise ModelError(
                f"legacy component {hidden.name!r} is not strongly deterministic: "
                "ambiguous reaction to some (state, inputs) pair"
            )
        self._hidden = hidden
        self.name = name if name is not None else hidden.name
        self._state: State = next(iter(hidden.initial))
        self._period = 0
        self._instrumentation = Instrumentation.MINIMAL
        self._live = True
        self._timing_skew = 0
        # Black-box discipline counters (for tests and reports).
        self.steps_executed = 0
        self.resets = 0
        self.state_probes = 0

    # ----------------------------------------------------------- structural

    @property
    def inputs(self) -> frozenset[str]:
        """Structural interface: the input signals (always known)."""
        return self._hidden.inputs

    @property
    def outputs(self) -> frozenset[str]:
        """Structural interface: the output signals (always known)."""
        return self._hidden.outputs

    @property
    def initial_state(self) -> State:
        """The initial state identifier (reverse-engineered, §3)."""
        return next(iter(self._hidden.initial))

    @property
    def state_bound(self) -> int:
        """A reverse-engineered upper bound on the state count (§3)."""
        return len(self._hidden.states)

    # ------------------------------------------------------------ execution

    def reset(self) -> None:
        """Restart the component in its initial state, period zero."""
        self._state = next(iter(self._hidden.initial))
        self._period = 0
        self._timing_skew = 0
        self.resets += 1

    @property
    def period(self) -> int:
        """The current period number, as visible to the monitor.

        Under live full instrumentation this includes the probe-effect
        skew — the monitor reads *wrong* timing, which is the point.
        """
        if self._live and self._instrumentation is Instrumentation.FULL:
            return self._period + self._timing_skew
        return self._period

    def step(self, inputs: Iterable[str] = ()) -> StepOutcome:
        """Execute one period with the given input messages.

        Returns the produced outputs, or a blocked outcome when the
        component has no reaction (its state does not change then).
        """
        offered = inputs if type(inputs) is frozenset else frozenset(inputs)
        if not offered <= self._hidden.inputs:
            unknown = offered - self._hidden.inputs
            raise ExecutionError(
                f"component {self.name!r} has no input ports for {sorted(unknown)}"
            )
        self.steps_executed += 1
        matching = self._hidden.transitions_on(self._state, offered)
        if not matching:
            return StepOutcome(self.period, offered, frozenset(), blocked=True)
        transition = matching[0]  # unique by strong determinism
        self._state = transition.target
        self._period += 1
        return StepOutcome(self.period, offered, transition.outputs, blocked=False)

    # -------------------------------------------------------- instrumentation

    @contextmanager
    def instrumented(self, level: Instrumentation, *, live: bool):
        """Scope a monitoring configuration.

        ``live=True`` models execution in the real environment (probes
        cost time); ``live=False`` models deterministic replay on a host
        where additional instrumentation "has no effects on the
        execution" (§5).
        """
        previous = (self._instrumentation, self._live)
        self._instrumentation = level
        self._live = live
        try:
            yield self
        finally:
            self._instrumentation, self._live = previous

    def monitor_state(self) -> State:
        """Observe the current state — needs FULL instrumentation.

        A live probe additionally skews the component's visible timing
        by one period (the probe effect); replay probes are free.
        """
        if self._instrumentation is not Instrumentation.FULL:
            raise ExecutionError(
                f"state observation on {self.name!r} requires FULL instrumentation "
                "(the minimal probes record messages and periods only)"
            )
        self.state_probes += 1
        if self._live:
            self._timing_skew += 1
        return self._state

    @property
    def probe_effect_active(self) -> bool:
        """Has live full instrumentation skewed the visible timing?"""
        return self._live and self._timing_skew > 0

    def __repr__(self) -> str:
        return (
            f"LegacyComponent(name={self.name!r}, |I|={len(self.inputs)}, "
            f"|O|={len(self.outputs)}, state_bound={self.state_bound})"
        )
