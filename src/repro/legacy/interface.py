"""Structural interface descriptions of legacy components (§3).

The initial behavior synthesis needs only the *structural* interface —
input and output signal sets, the initial state, and a reverse-
engineered upper bound on the number of relevant states.  "The
interface description can be taken from the context or reverse-
engineered straightforwardly from the legacy component" (§3); this
module packages exactly that information and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.automaton import State
from ..automata.interaction import InteractionUniverse
from ..errors import ModelError
from .component import LegacyComponent

__all__ = ["InterfaceDescription", "interface_of"]


@dataclass(frozen=True)
class InterfaceDescription:
    """What is structurally known about a legacy component.

    Attributes
    ----------
    name:
        The component name.
    inputs, outputs:
        The port signal sets ``I`` and ``O``.
    initial_state:
        The identifier of the initial state ``s₀`` (§3: "we simply build
        an ``M_l^0`` by determining the initial state ``s₀`` of ``M_r``").
    state_bound:
        Optional reverse-engineered upper bound on the relevant state
        count; used for termination diagnostics and by baselines.
    """

    name: str
    inputs: frozenset[str]
    outputs: frozenset[str]
    initial_state: State
    state_bound: int | None = None

    def __post_init__(self) -> None:
        if self.inputs & self.outputs:
            raise ModelError(
                f"interface of {self.name!r}: inputs and outputs overlap on "
                f"{sorted(self.inputs & self.outputs)}"
            )

    def universe(
        self, *, full: bool = False, allow_simultaneous: bool = False
    ) -> InteractionUniverse:
        """The interaction alphabet induced by this interface.

        ``full=True`` yields the literal power-set alphabet of
        Definition 1; the default is the message-passing alphabet (at
        most one message consumed and one produced per time unit), which
        is what RTSC-modeled contexts actually use.
        """
        if full:
            return InteractionUniverse.full(self.inputs, self.outputs)
        return InteractionUniverse.singletons(
            self.inputs, self.outputs, allow_simultaneous=allow_simultaneous
        )


def interface_of(component: LegacyComponent, *, with_state_bound: bool = True) -> InterfaceDescription:
    """Extract the structural interface from an executable component."""
    return InterfaceDescription(
        name=component.name,
        inputs=component.inputs,
        outputs=component.outputs,
        initial_state=component.initial_state,
        state_bound=component.state_bound if with_state_bound else None,
    )
