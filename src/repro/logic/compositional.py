"""Compositional constraints (Definition 5) and the §2.7 chaos weakening.

Definition 5 singles out the constraints that survive (a) composition
with automata over disjoint label sets and (b) refinement.  §2.4 shows
that ACTL formulas — only universal path quantifiers, negation applied
to atoms only — together with deadlock freedom are compositional, while
existential properties ("a specific state is eventually reached") are
not.  The iterative synthesis refuses non-compositional constraints up
front, because Lemma 5 (the soundness of a successful verification)
would not hold for them.

§2.7's proposition weakening replaces the per-subset chaos states by a
single fresh proposition: every positive literal ``p`` becomes
``p ∨ chaos`` and every negative literal ``¬p`` becomes ``¬p ∨ chaos``,
so the chaotic states satisfy every (weakened) literal and the closure
stays a safe abstraction for labeled properties.
"""

from __future__ import annotations

from ..automata.chaos import CHAOS_PROPOSITION
from ..errors import FormulaError, NotCompositionalError
from .formulas import (
    Deadlock,
    EF,
    EG,
    EU,
    EX,
    FALSE,
    FalseF,
    Formula,
    Not,
    Or,
    Prop,
    TRUE,
    TrueF,
)

__all__ = [
    "to_nnf",
    "is_universal",
    "is_compositional",
    "assert_compositional",
    "weaken_for_chaos",
]


def _identity(atom: Formula, negated: bool) -> Formula:
    if isinstance(atom, TrueF):
        return FALSE if negated else TRUE
    if isinstance(atom, FalseF):
        return TRUE if negated else FALSE
    return Not(atom) if negated else atom


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed onto the atoms."""
    return formula.map_atoms(_identity)


def is_universal(formula: Formula) -> bool:
    """Is the formula in ACTL (no existential path quantifier in NNF)?"""
    try:
        normalised = to_nnf(formula)
    except FormulaError:
        return False
    return not any(isinstance(node, (EX, EF, EG, EU)) for node in normalised.walk())


def is_compositional(formula: Formula) -> bool:
    """Definition 5 via §2.4: the ACTL fragment is compositional."""
    return is_universal(formula)


def assert_compositional(formula: Formula) -> None:
    """Raise :class:`NotCompositionalError` for non-ACTL constraints."""
    if not is_compositional(formula):
        raise NotCompositionalError(
            f"{formula} is not a compositional constraint (Definition 5): it contains an "
            "existential path quantifier, so neither Lemma 5 (verification soundness) nor "
            "refinement preservation applies — rewrite it in the ACTL fragment"
        )


def weaken_for_chaos(formula: Formula, *, chaos_proposition: str = CHAOS_PROPOSITION) -> Formula:
    """§2.7's weakening ``p ↦ (p ∨ p')`` / ``¬p ↦ (¬p ∨ p')``.

    The ``deadlock`` atom is deliberately *not* weakened: ``s_δ`` really
    is a deadlock state of the closure, and the chaotic part must remain
    able to signal potential deadlocks (that is what drives the paper's
    Listing 1.1 counterexample).
    """
    chaos = Prop(chaos_proposition)

    def transform(atom: Formula, negated: bool) -> Formula:
        if isinstance(atom, Prop) and atom.name != chaos_proposition:
            literal: Formula = Not(atom) if negated else atom
            return Or(literal, chaos)
        if isinstance(atom, Deadlock):
            return Not(atom) if negated else atom
        return _identity(atom, negated)

    return formula.map_atoms(transform)
