"""Temporal logic: CCTL formulas, model checking, counterexamples (§2.1).

Properties are written in clocked CTL; the compositional (ACTL)
fragment of Definition 5 is what the integration scheme verifies, and
violated checks yield witness runs that double as test inputs.
"""

from .checker import CheckResult, ModelChecker, check
from .compositional import (
    assert_compositional,
    is_compositional,
    is_universal,
    to_nnf,
    weaken_for_chaos,
)
from .counterexample import counterexample, counterexamples, deadlock_counterexample
from .formulas import (
    AF,
    AG,
    AU,
    AX,
    And,
    DEADLOCK,
    DEADLOCK_FREE,
    Deadlock,
    EF,
    EG,
    EU,
    EX,
    FALSE,
    FalseF,
    Formula,
    Implies,
    Interval,
    Not,
    Or,
    Prop,
    TRUE,
    TrueF,
    conjunction,
    disjunction,
)
from .parser import parse

__all__ = [
    "Formula",
    "Interval",
    "TrueF",
    "FalseF",
    "Prop",
    "Deadlock",
    "Not",
    "And",
    "Or",
    "Implies",
    "AX",
    "EX",
    "AF",
    "EF",
    "AG",
    "EG",
    "AU",
    "EU",
    "TRUE",
    "FALSE",
    "DEADLOCK",
    "DEADLOCK_FREE",
    "conjunction",
    "disjunction",
    "parse",
    "ModelChecker",
    "CheckResult",
    "check",
    "counterexample",
    "counterexamples",
    "deadlock_counterexample",
    "to_nnf",
    "is_universal",
    "is_compositional",
    "assert_compositional",
    "weaken_for_chaos",
]
