"""Textual formula syntax, including the paper's ``A[] …`` notation.

Grammar (lowest to highest precedence)::

    formula  := implies
    implies  := or ( '->' implies )?                  (right associative)
    or       := and ( ('or' | '||' | '\\/') and )*
    and      := unary ( ('and' | '&&' | '/\\') unary )*
    unary    := ('not' | '!') unary
              | ('AG'|'AF'|'EG'|'EF') interval? unary
              | ('AX'|'EX') unary
              | 'A' '[]' unary        -- UPPAAL-style invariant (= AG)
              | 'E' '<>' unary        -- UPPAAL-style reachability (= EF)
              | ('A'|'E') '[' formula 'U' interval? formula ']'
              | atom
    atom     := 'true' | 'false' | 'deadlock' | prop | '(' formula ')'
    interval := '[' int ',' int ']'
    prop     := identifier (dots allowed, e.g. rearRole.convoy)

Examples::

    parse("A[] not (rearRole.convoy and frontRole.noConvoy)")
    parse("AG (not request or AF[1,5] response)")
    parse("AG not deadlock")
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .formulas import (
    AF,
    AG,
    AU,
    AX,
    DEADLOCK,
    EF,
    EG,
    EU,
    EX,
    FALSE,
    Formula,
    Implies,
    Interval,
    Not,
    Or,
    And,
    Prop,
    TRUE,
)

__all__ = ["parse"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<box>\[\]) | (?P<diamond><>)
  | (?P<lbracket>\[) | (?P<rbracket>\])
  | (?P<lparen>\() | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<arrow>->)
  | (?P<or_sym>\|\||\\/)
  | (?P<and_sym>&&|/\\)
  | (?P<bang>!)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "true",
    "false",
    "deadlock",
    "not",
    "and",
    "or",
    "AG",
    "AF",
    "EG",
    "EF",
    "AX",
    "EX",
    "A",
    "E",
    "U",
}


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r}, @{self.position})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at offset {position} in {text!r}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            value = match.group()
            if kind == "ident" and value in _KEYWORDS:
                kind = value
            tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # ------------------------------------------------------------- utilities

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text or 'end of input'!r} "
                f"at offset {token.position} in {self.text!r}"
            )
        return self.advance()

    def accept(self, kind: str) -> _Token | None:
        if self.peek().kind == kind:
            return self.advance()
        return None

    # --------------------------------------------------------------- grammar

    def parse(self) -> Formula:
        formula = self.implies()
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(
                f"trailing input {token.text!r} at offset {token.position} in {self.text!r}"
            )
        return formula

    def implies(self) -> Formula:
        left = self.disjunction()
        if self.accept("arrow"):
            return Implies(left, self.implies())
        return left

    def disjunction(self) -> Formula:
        left = self.conjunction()
        while self.peek().kind in ("or", "or_sym"):
            self.advance()
            left = Or(left, self.conjunction())
        return left

    def conjunction(self) -> Formula:
        left = self.unary()
        while self.peek().kind in ("and", "and_sym"):
            self.advance()
            left = And(left, self.unary())
        return left

    def interval(self) -> Interval | None:
        if self.peek().kind != "lbracket":
            return None
        self.advance()
        low = int(self.expect("number").text)
        self.expect("comma")
        high = int(self.expect("number").text)
        self.expect("rbracket")
        return Interval(low, high)

    def unary(self) -> Formula:
        token = self.peek()
        if token.kind in ("not", "bang"):
            self.advance()
            return Not(self.unary())
        if token.kind in ("AG", "AF", "EG", "EF"):
            self.advance()
            node = {"AG": AG, "AF": AF, "EG": EG, "EF": EF}[token.kind]
            window = self.interval()
            return node(self.unary(), window)
        if token.kind in ("AX", "EX"):
            self.advance()
            return (AX if token.kind == "AX" else EX)(self.unary())
        if token.kind in ("A", "E"):
            return self.quantified(token.kind)
        return self.atom()

    def quantified(self, quantifier: str) -> Formula:
        self.advance()
        token = self.peek()
        if token.kind == "box":
            if quantifier != "A":
                raise ParseError(f"'[]' requires the A quantifier at offset {token.position}")
            self.advance()
            return AG(self.unary())
        if token.kind == "diamond":
            if quantifier != "E":
                raise ParseError(f"'<>' requires the E quantifier at offset {token.position}")
            self.advance()
            return EF(self.unary())
        if token.kind == "lbracket":
            self.advance()
            left = self.implies()
            self.expect("U")
            window = self.interval()
            right = self.implies()
            self.expect("rbracket")
            return (AU if quantifier == "A" else EU)(left, right, window)
        raise ParseError(
            f"expected '[]', '<>' or '[φ U ψ]' after {quantifier} at offset {token.position}"
        )

    def atom(self) -> Formula:
        token = self.peek()
        if token.kind == "true":
            self.advance()
            return TRUE
        if token.kind == "false":
            self.advance()
            return FALSE
        if token.kind == "deadlock":
            self.advance()
            return DEADLOCK
        if token.kind == "ident":
            self.advance()
            return Prop(token.text)
        if token.kind == "lparen":
            self.advance()
            inner = self.implies()
            self.expect("rparen")
            return inner
        raise ParseError(
            f"expected an atom but found {token.text or 'end of input'!r} "
            f"at offset {token.position} in {self.text!r}"
        )


def parse(text: str) -> Formula:
    """Parse a CCTL formula from its textual form."""
    if not isinstance(text, str) or not text.strip():
        raise ParseError("formula text must be a non-empty string")
    return _Parser(text).parse()
