"""CTL/CCTL model checking over labeled automata (§2.1, §4.1).

The checker evaluates formulas over the automaton's state graph with
*maximal path* semantics: a path is maximal when it is infinite or ends
in a deadlock state.  This matters because the paper's verification
obligation is always ``φ ∧ ¬δ`` — deadlock states are first-class
citizens, not semantic accidents:

* ``AX φ`` is vacuously true in a deadlock state;
* ``AF φ`` fails in a deadlock state unless ``φ`` already holds there;
* ``EG φ`` is satisfied by a path that deadlocks while ``φ`` holds.

Unbounded operators use the standard least/greatest fixpoint
characterisations; bounded (CCTL) operators use a backward dynamic
program over the remaining window, exploiting that every transition
takes exactly one time unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.automaton import Automaton, State
from ..errors import FormulaError
from .formulas import (
    AF,
    AG,
    AU,
    AX,
    And,
    Deadlock,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Implies,
    Interval,
    Not,
    Or,
    Prop,
    TrueF,
)

__all__ = ["CheckResult", "ModelChecker", "check"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one formula against one automaton."""

    formula: Formula
    holds: bool
    satisfying: frozenset[State]
    violating_initial: frozenset[State]

    def __bool__(self) -> bool:
        return self.holds


class ModelChecker:
    """A reusable checker for one automaton.

    Satisfaction sets are memoised per (sub)formula, so checking several
    properties — or re-explaining subformulas during counterexample
    construction — does not repeat fixpoint computations.
    """

    def __init__(self, automaton: Automaton):
        self.automaton = automaton
        self._successors: dict[State, tuple[State, ...]] = {
            state: tuple(sorted({t.target for t in automaton.transitions_from(state)}, key=repr))
            for state in automaton.states
        }
        self._deadlocks = frozenset(s for s, succ in self._successors.items() if not succ)
        self._cache: dict[Formula, frozenset[State]] = {}

    # ------------------------------------------------------------- public API

    def sat(self, formula: Formula) -> frozenset[State]:
        """The set of states satisfying ``formula``."""
        cached = self._cache.get(formula)
        if cached is None:
            cached = self._evaluate(formula)
            self._cache[formula] = cached
        return cached

    def holds(self, formula: Formula) -> bool:
        """``M ⊨ φ``: every initial state satisfies the formula."""
        satisfying = self.sat(formula)
        return all(q in satisfying for q in self.automaton.initial)

    def check(self, formula: Formula) -> CheckResult:
        satisfying = self.sat(formula)
        violating = frozenset(q for q in self.automaton.initial if q not in satisfying)
        return CheckResult(formula, not violating, satisfying, violating)

    @property
    def deadlock_states(self) -> frozenset[State]:
        return self._deadlocks

    def successors(self, state: State) -> tuple[State, ...]:
        return self._successors[state]

    # ------------------------------------------------------------ evaluation

    def _evaluate(self, formula: Formula) -> frozenset[State]:
        states = self.automaton.states
        if isinstance(formula, TrueF):
            return states
        if isinstance(formula, FalseF):
            return frozenset()
        if isinstance(formula, Prop):
            return frozenset(s for s in states if formula.name in self.automaton.labels(s))
        if isinstance(formula, Deadlock):
            return self._deadlocks
        if isinstance(formula, Not):
            return states - self.sat(formula.operand)
        if isinstance(formula, And):
            return self.sat(formula.left) & self.sat(formula.right)
        if isinstance(formula, Or):
            return self.sat(formula.left) | self.sat(formula.right)
        if isinstance(formula, Implies):
            return (states - self.sat(formula.left)) | self.sat(formula.right)
        if isinstance(formula, AX):
            operand = self.sat(formula.operand)
            return frozenset(s for s in states if all(t in operand for t in self._successors[s]))
        if isinstance(formula, EX):
            operand = self.sat(formula.operand)
            return frozenset(s for s in states if any(t in operand for t in self._successors[s]))
        if isinstance(formula, (AF, EF, AG, EG)):
            operand = self.sat(formula.operand)
            if formula.interval is not None:
                return self._bounded_unary(type(formula).__name__, operand, formula.interval)
            return self._unbounded_unary(type(formula).__name__, operand)
        if isinstance(formula, (AU, EU)):
            left, right = self.sat(formula.left), self.sat(formula.right)
            universal = isinstance(formula, AU)
            if formula.interval is not None:
                return self._bounded_until(left, right, formula.interval, universal=universal)
            return self._unbounded_until(left, right, universal=universal)
        raise FormulaError(f"unknown formula node {formula!r}")

    # ------------------------------------------------------- unbounded cases

    def _pre_exists(self, target: frozenset[State]) -> frozenset[State]:
        return frozenset(
            s for s, succ in self._successors.items() if any(t in target for t in succ)
        )

    def _pre_forall(self, target: frozenset[State]) -> frozenset[State]:
        return frozenset(
            s for s, succ in self._successors.items() if all(t in target for t in succ)
        )

    def _unbounded_unary(self, operator: str, operand: frozenset[State]) -> frozenset[State]:
        states = self.automaton.states
        if operator == "EF":  # lfp Z = φ ∪ pre∃(Z)
            current: frozenset[State] = frozenset()
            while True:
                updated = operand | self._pre_exists(current)
                if updated == current:
                    return current
                current = updated
        if operator == "AF":  # lfp Z = φ ∪ (¬δ ∩ pre∀(Z))
            current = frozenset()
            live = states - self._deadlocks
            while True:
                updated = operand | (live & self._pre_forall(current))
                if updated == current:
                    return current
                current = updated
        if operator == "AG":  # gfp Z = φ ∩ pre∀(Z)
            current = states
            while True:
                updated = operand & self._pre_forall(current)
                if updated == current:
                    return current
                current = updated
        if operator == "EG":  # gfp Z = φ ∩ (δ ∪ pre∃(Z))
            current = states
            while True:
                updated = operand & (self._deadlocks | self._pre_exists(current))
                if updated == current:
                    return current
                current = updated
        raise AssertionError(operator)

    def _unbounded_until(
        self, left: frozenset[State], right: frozenset[State], *, universal: bool
    ) -> frozenset[State]:
        live = self.automaton.states - self._deadlocks
        current: frozenset[State] = frozenset()
        while True:
            if universal:
                updated = right | (left & live & self._pre_forall(current))
            else:
                updated = right | (left & self._pre_exists(current))
            if updated == current:
                return current
            current = updated

    # --------------------------------------------------------- bounded cases

    def bounded_layers(
        self, operator: str, operand: frozenset[State], interval: Interval
    ) -> list[frozenset[State]]:
        """Backward DP layers for a bounded unary operator.

        ``layers[k]`` is the satisfaction set of the operator with the
        window shifted ``k`` steps into the past, i.e. with remaining
        window ``[max(low-k, 0), high-k]``.  ``layers[0]`` is the
        satisfaction set of the operator itself; deeper layers are used
        by the counterexample generator to steer failing paths.
        """
        low, high = interval.low, interval.high
        states = self.automaton.states

        def active(k: int) -> bool:  # is position k inside the window?
            return max(low - k, 0) == 0

        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        for k in range(high, -1, -1):
            satisfied: set[State] = set()
            last = k == high
            for state in states:
                here = state in operand
                successors = self._successors[state]
                if operator == "AF":
                    if active(k) and here:
                        ok = True
                    elif last or not successors:
                        ok = False
                    else:
                        ok = all(t in layers[k + 1] for t in successors)
                elif operator == "EF":
                    if active(k) and here:
                        ok = True
                    elif last:
                        ok = False
                    else:
                        ok = any(t in layers[k + 1] for t in successors)
                elif operator == "AG":
                    ok = (not active(k) or here) and (
                        last or all(t in layers[k + 1] for t in successors)
                    )
                elif operator == "EG":
                    ok = (not active(k) or here) and (
                        last or not successors or any(t in layers[k + 1] for t in successors)
                    )
                else:
                    raise AssertionError(operator)
                if ok:
                    satisfied.add(state)
            layers[k] = frozenset(satisfied)
        return layers

    def _bounded_unary(
        self, operator: str, operand: frozenset[State], interval: Interval
    ) -> frozenset[State]:
        return self.bounded_layers(operator, operand, interval)[0]

    def _bounded_until(
        self,
        left: frozenset[State],
        right: frozenset[State],
        interval: Interval,
        *,
        universal: bool,
    ) -> frozenset[State]:
        low, high = interval.low, interval.high
        states = self.automaton.states
        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        for k in range(high, -1, -1):
            satisfied: set[State] = set()
            last = k == high
            for state in states:
                window_open = max(low - k, 0) == 0
                if window_open and state in right:
                    satisfied.add(state)
                    continue
                if last or state not in left:
                    continue
                successors = self._successors[state]
                if universal:
                    if successors and all(t in layers[k + 1] for t in successors):
                        satisfied.add(state)
                else:
                    if any(t in layers[k + 1] for t in successors):
                        satisfied.add(state)
            layers[k] = frozenset(satisfied)
        return layers[0]


def check(automaton: Automaton, formula: Formula) -> CheckResult:
    """One-shot convenience wrapper around :class:`ModelChecker`."""
    return ModelChecker(automaton).check(formula)
