"""CTL/CCTL model checking over labeled automata (§2.1, §4.1).

The checker evaluates formulas over the automaton's state graph with
*maximal path* semantics: a path is maximal when it is infinite or ends
in a deadlock state.  This matters because the paper's verification
obligation is always ``φ ∧ ¬δ`` — deadlock states are first-class
citizens, not semantic accidents:

* ``AX φ`` is vacuously true in a deadlock state;
* ``AF φ`` fails in a deadlock state unless ``φ`` already holds there;
* ``EG φ`` is satisfied by a path that deadlocks while ``φ`` holds.

Unbounded operators use the standard least/greatest fixpoint
characterisations, computed with linear-time predecessor worklists
(insertion for least fixpoints, counted removal for greatest ones)
rather than whole-state-space sweeps.  Bounded (CCTL) operators use a
backward dynamic program over the remaining window, exploiting that
every transition takes exactly one time unit.

Dense integer-indexed core (``dense=True``, the default for large products)
---------------------------------------------------------------------------

On products of at least
:data:`~repro.automata.interning.DENSE_STATE_FLOOR` states (or whenever
forced via ``dense=True`` / ``REPRO_DENSE``), every solver runs over
the dense core of
:mod:`repro.automata.interning`: states are interned to contiguous ids
(one :class:`~repro.automata.interning.StateInterner` shared down the
warm chain, so ids survive learning steps), the transition relation is
CSR adjacency arrays, membership is byte-per-state flag buffers, and
the bounded DPs are per-layer ``pre∀``/``pre∃`` images (numpy-
accelerated when available and worthwhile, pure stdlib otherwise).
Shard ownership is ``id % K`` instead of crc32-of-repr.  Everything
observable — sat sets, verdicts, ``fixpoint_work`` and its per-shard
split, handoff counts — is bit-identical to the legacy dict/set
solvers, which remain available via ``dense=False`` (or
``REPRO_DENSE=0``) as the differential oracle.  Only the state↔id
conversion crosses the boundary: caches, warm structures, and the
public API keep frozensets, so dense and dict checkers warm-start from
each other freely.

Sharded fixpoints (``parallelism=K``)
-------------------------------------

With ``parallelism=K > 1`` every unbounded fixpoint solve is split into
``K`` shards.  The dense core owns states by ``id % K``; the legacy
dict solvers key ownership by the same stable crc32-of-repr the
product BFS uses (:func:`~repro.automata.sharding.shard_of`).  Each
shard runs a private worklist over the states it owns; discoveries
whose predecessors live in another shard are emitted as *handoffs* and
routed between rounds, in shard order, until no shard holds work — a
global fixpoint.  Because the fixpoints are confluent (chaotic
iteration converges to the same set regardless of processing order) and
every state is admitted/removed by exactly one owner shard, the
satisfaction sets, verdicts, counterexamples, and the total
``fixpoint_work`` counter are bit-identical to the sequential solver
for every shard count, execution strategy, and scheduling order; only
the per-shard breakdown (:attr:`CheckerStats.shard_fixpoint_work`,
:attr:`CheckerStats.shard_handoffs`) varies with ``K``.  Shard workers
execute on the reusable worker pool of :mod:`repro.automata.sharding`
— inline below the workload floor, threads above it (fixpoints close
over the checker's predecessor maps, so forked processes are never
worth the pickling and a forced ``strategy="process"`` is clamped to
threads).

Warm start (incremental re-checking)
------------------------------------

``ModelChecker(automaton, warm_from=prev, dirty_states=seeds)`` reuses
work from a checker built for the *previous* version of the automaton.
``seeds`` must contain every state whose outgoing transitions or labels
differ from the previous automaton (new states are detected
automatically).  Because every CTL value of a state depends only on the
subgraph reachable from it, any state that cannot reach a seed — the
*unaffected region* — keeps its previous satisfaction values verbatim;
fixpoints are re-solved only over the affected region, with the
unaffected boundary supplying fixed values.  This is what makes
re-verification after a small learning step nearly free (see
``docs/performance.md``).
"""

from __future__ import annotations

import time
from array import array
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..automata.automaton import Automaton, State
from ..automata.interning import DenseGraph, StateInterner, flags_of_ids, resolve_dense
from ..automata.sharding import (
    WorkerPool,
    check_strategy,
    get_pool,
    resolve_checker_parallelism,
    select_strategy,
    shard_of,
)
from ..errors import FormulaError
from ..obs.tracer import NULL_TRACER
from .formulas import (
    AF,
    AG,
    AU,
    AX,
    And,
    Deadlock,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Implies,
    Interval,
    Not,
    Or,
    Prop,
    TrueF,
)

__all__ = ["CheckResult", "CheckerStats", "ModelChecker", "check"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one formula against one automaton."""

    formula: Formula
    holds: bool
    satisfying: frozenset[State]
    violating_initial: frozenset[State]

    def __bool__(self) -> bool:
        return self.holds


@dataclass
class CheckerStats:
    """Work counters, mainly interesting for warm-started checkers.

    :meth:`as_dict` reports every counter under the ``checker_*``
    namespace, mirroring the ``product_*`` namespace of the incremental
    product's :class:`~repro.automata.incremental.StepStats` — the two
    vocabularies meet on ``IterationRecord`` and in synthesis reports.
    """

    successors_reused: int = 0  #: per-state successor tuples taken from the warm checker
    sat_reused: int = 0  #: formulas answered entirely from the warm cache
    sat_patched: int = 0  #: formulas re-solved only over the affected region
    sat_computed: int = 0  #: formulas evaluated from scratch
    affected_states: int = 0  #: size of the affected region (0 when cold)
    fixpoint_work: int = 0  #: worklist insertions/removals across all fixpoints
    shards: int = 1  #: shard count of the checker's fixpoint solves
    shard_handoffs: int = 0  #: cross-shard worklist handoffs across all solves
    dense_states: int = 0  #: interned ids resident in the dense core (0 = dict mode)
    bitset_words: int = 0  #: 64-bit words per dense satisfaction bitset
    _sharded_work: list[int] = field(default_factory=list, repr=False)

    @property
    def shard_fixpoint_work(self) -> tuple[int, ...]:
        """Per-shard split of :attr:`fixpoint_work`.

        Work done outside the sharded solvers (bounded-operator dynamic
        programs, which stay sequential) is attributed to shard 0, so
        ``sum(shard_fixpoint_work) == fixpoint_work`` always holds.
        """
        if self.shards <= 1 or not self._sharded_work:
            return (self.fixpoint_work,) + (0,) * (self.shards - 1)
        work = list(self._sharded_work)
        work[0] += self.fixpoint_work - sum(work)
        return tuple(work)

    def as_dict(self) -> dict[str, object]:
        return {
            "checker_successors_reused": self.successors_reused,
            "checker_sat_reused": self.sat_reused,
            "checker_sat_patched": self.sat_patched,
            "checker_sat_computed": self.sat_computed,
            "checker_affected_states": self.affected_states,
            "checker_fixpoint_work": self.fixpoint_work,
            "checker_shards": self.shards,
            "checker_shard_fixpoint_work": list(self.shard_fixpoint_work),
            "checker_shard_handoffs": self.shard_handoffs,
            "checker_dense_states": self.dense_states,
            "checker_bitset_words": self.bitset_words,
        }

    def publish_to(self, registry) -> None:
        """Snapshot every ``checker_*`` counter into a metrics registry.

        Gauge semantics (``MetricsRegistry.absorb``): the stats object
        is cumulative per checker, so re-publishing never double-counts.
        """
        registry.absorb(self.as_dict())


@dataclass
class _WarmState:
    """What survives from the previous iteration's checker."""

    states: frozenset[State]
    cache: dict[Formula, frozenset[State]]
    layers: dict[tuple, list[frozenset[State]]]
    affected: frozenset[State] = field(default_factory=frozenset)
    unaffected: frozenset[State] = field(default_factory=frozenset)


class ModelChecker:
    """A reusable checker for one automaton.

    Satisfaction sets are memoised per (sub)formula, so checking several
    properties — or re-explaining subformulas during counterexample
    construction — does not repeat fixpoint computations.

    Parameters
    ----------
    automaton:
        The model to check.
    warm_from:
        A checker previously built for an *earlier version* of the same
        automaton.  Structural maps and satisfaction sets are carried
        over for every state outside the affected region.
    dirty_states:
        Required with ``warm_from``: every state of ``automaton`` whose
        outgoing transitions or labels differ from the warm checker's
        automaton.  States absent from the warm automaton are treated as
        dirty automatically; removed states need no mention (their
        erstwhile predecessors must have changed and hence be listed).
    parallelism:
        Shard count for the unbounded fixpoint solves (see the module
        docstring).  ``None`` defers to ``REPRO_CHECKER_PARALLELISM``,
        defaulting to 1 (sequential).  Results are bit-identical for
        every value.
    strategy:
        Force how shard workers execute (``sequential``/``thread``;
        ``process`` is accepted but clamped to ``thread``).  ``None``
        picks by workload, like the product BFS.
    pool:
        The :class:`~repro.automata.sharding.WorkerPool` to run shard
        workers on; defaults to the process-wide shared pool.
    dense:
        Run the fixpoint solvers over the dense integer-indexed core
        (interned ids + CSR adjacency + flag buffers) instead of the
        legacy dict/set worklists.  ``None`` defers to ``REPRO_DENSE``
        when set, otherwise picks dense iff the product has at least
        :data:`~repro.automata.interning.DENSE_STATE_FLOOR` states —
        below that, interning and flag conversion cost more than the
        per-object tax they remove.  Results, verdicts, and every work
        counter are bit-identical either way — the dict solvers remain
        as the differential oracle.
    tracer:
        A :class:`repro.obs.Tracer` receiving ``checker.fixpoint`` /
        ``checker.bounded`` spans and per-shard ``checker.shard_round``
        spans (on ``checker/shard-K`` tracks).  Defaults to the no-op
        tracer; the environment is deliberately *not* consulted here —
        only the synthesis entry points resolve ``REPRO_TRACE``.
    """

    def __init__(
        self,
        automaton: Automaton,
        *,
        warm_from: "ModelChecker | None" = None,
        dirty_states: Iterable[State] = (),
        parallelism: int | None = None,
        strategy: str | None = None,
        pool: WorkerPool | None = None,
        dense: bool | None = None,
        tracer=None,
    ):
        self.automaton = automaton
        self.parallelism = resolve_checker_parallelism(parallelism)
        self.strategy = check_strategy(strategy)
        self._pool = pool if pool is not None else get_pool()
        self.dense = resolve_dense(dense, state_count=len(automaton.states))
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = CheckerStats(shards=self.parallelism)
        if self.parallelism > 1:
            self.stats._sharded_work = [0] * self.parallelism
        states = automaton.states

        old_successors = warm_from._successors if warm_from is not None else None
        dirty = frozenset(dirty_states) if warm_from is not None else frozenset()
        successors: dict[State, tuple[State, ...]] = {}
        fresh: list[State] = []
        for state in states:
            if old_successors is not None and state not in dirty:
                cached = old_successors.get(state)
                if cached is not None:
                    successors[state] = cached
                    self.stats.successors_reused += 1
                    continue
            successors[state] = tuple(
                sorted({t.target for t in automaton.transitions_from(state)}, key=repr)
            )
            fresh.append(state)
        self._successors = successors
        if old_successors is None:
            predecessors: dict[State, list[State]] = {}
            for state, succ in successors.items():
                for target in succ:
                    predecessors.setdefault(target, []).append(state)
        else:
            # Warm start: splice only the edges of re-derived and removed
            # states into a copy of the previous predecessor map.
            assert warm_from is not None
            predecessors = {
                target: preds
                for target, preds in warm_from._predecessors.items()
                if target in states
            }
            copied: set[State] = set()

            def detach(source: State, targets: tuple[State, ...]) -> None:
                for target in targets:
                    preds = predecessors.get(target)
                    if preds is None:
                        continue
                    if target not in copied:
                        preds = list(preds)
                        predecessors[target] = preds
                        copied.add(target)
                    if source in preds:
                        preds.remove(source)

            def attach(source: State, targets: tuple[State, ...]) -> None:
                for target in targets:
                    preds = predecessors.get(target)
                    if preds is None:
                        predecessors[target] = [source]
                        copied.add(target)
                        continue
                    if target not in copied:
                        preds = list(preds)
                        predecessors[target] = preds
                        copied.add(target)
                    preds.append(source)

            for state in fresh:
                old = old_successors.get(state)
                if old is not None:
                    detach(state, old)
            for state in warm_from.automaton.states:
                if state not in states:
                    detach(state, old_successors.get(state, ()))
            for state in fresh:
                attach(state, successors[state])
        self._predecessors = predecessors
        self._deadlocks = frozenset(s for s, succ in successors.items() if not succ)
        self._interner: StateInterner | None = None
        self._graph: DenseGraph | None = None
        self._owner_flags: bytearray | None = None
        if self.dense:
            # One interner travels down the warm chain: surviving states
            # keep their ids, fresh ones are appended in repr-sorted
            # order (delta extension), so shard ownership (id % K) and
            # every dense structure stay stable across learning steps.
            warm_interner = warm_from._interner if warm_from is not None else None
            interner = warm_interner if warm_interner is not None else StateInterner()
            interner.extend(states)
            self._interner = interner
            self.stats.dense_states = len(interner)
            self.stats.bitset_words = (len(interner) + 63) // 64
            # The CSR graph is built lazily on the first dense solve —
            # warm iterations whose affected region is empty answer
            # everything from the cache and never need it.
        self._owner: dict[State, int] | None = None
        if self.parallelism > 1 and not self.dense:
            # crc32-of-repr ownership, reused from the warm checker when
            # the shard count matches (most states survive a learning step).
            shards = self.parallelism
            warm_owner = (
                warm_from._owner
                if warm_from is not None and warm_from.parallelism == shards
                else None
            )
            if warm_owner is None:
                self._owner = {state: shard_of(state, shards) for state in states}
            else:
                owner: dict[State, int] = {}
                for state in states:
                    cached = warm_owner.get(state)
                    owner[state] = shard_of(state, shards) if cached is None else cached
                self._owner = owner
        self._cache: dict[Formula, frozenset[State]] = {}
        self._layer_memo: dict[tuple, list[frozenset[State]]] = {}
        self._formula_layers: dict[tuple, list[frozenset[State]]] = {}
        self._warm = self._prepare_warm(warm_from, dirty) if warm_from is not None else None

    def _prepare_warm(self, warm_from: "ModelChecker", dirty: frozenset[State]) -> "_WarmState | None":
        states = self.automaton.states
        seeds = {s for s in states if s in dirty or s not in warm_from._successors}
        # Affected region: everything that can reach a seed.  Values of
        # all other states are untouched by the change, because a CTL
        # value only depends on the reachable subgraph.
        affected = set(seeds)
        queue = deque(seeds)
        while queue:
            state = queue.popleft()
            for pred in self._predecessors.get(state, ()):
                if pred not in affected:
                    affected.add(pred)
                    queue.append(pred)
        warm = _WarmState(
            states=warm_from.automaton.states,
            cache=warm_from._cache,
            layers=warm_from._formula_layers,
            affected=frozenset(affected),
            unaffected=states - affected,
        )
        self.stats.affected_states = len(warm.affected)
        if not warm.affected:
            # Nothing changed: bounded-operator layers stay valid and must
            # travel forward so the *next* warm start can still patch them.
            self._formula_layers.update(warm_from._formula_layers)
        return warm

    # ------------------------------------------------------------- public API

    def sat(self, formula: Formula) -> frozenset[State]:
        """The set of states satisfying ``formula``."""
        cached = self._cache.get(formula)
        if cached is None:
            cached = self._evaluate(formula)
            self._cache[formula] = cached
        return cached

    def holds(self, formula: Formula) -> bool:
        """``M ⊨ φ``: every initial state satisfies the formula."""
        satisfying = self.sat(formula)
        return all(q in satisfying for q in self.automaton.initial)

    def check(self, formula: Formula) -> CheckResult:
        satisfying = self.sat(formula)
        violating = frozenset(q for q in self.automaton.initial if q not in satisfying)
        return CheckResult(formula, not violating, satisfying, violating)

    @property
    def deadlock_states(self) -> frozenset[State]:
        return self._deadlocks

    def successors(self, state: State) -> tuple[State, ...]:
        return self._successors[state]

    # -------------------------------------------------------------- warm help

    def _warm_previous(self, formula: Formula) -> frozenset[State] | None:
        """The previous iteration's sat set for ``formula``, if any."""
        if self._warm is None:
            return None
        return self._warm.cache.get(formula)

    def _patchable(self, formula: Formula) -> tuple[frozenset[State], frozenset[State]] | None:
        """``(domain, boundary)`` for an affected-region re-solve, or None.

        ``domain`` is the affected region to re-solve over; ``boundary``
        is the (already final) satisfaction on the unaffected region.
        Returns None when there is no warm value to patch from, in which
        case the caller evaluates from scratch.
        """
        previous = self._warm_previous(formula)
        if previous is None:
            return None
        warm = self._warm
        assert warm is not None
        return warm.affected, previous & warm.unaffected

    # ------------------------------------------------------------ evaluation

    def _evaluate(self, formula: Formula) -> frozenset[State]:
        states = self.automaton.states
        if self._warm is not None and not self._warm.affected:
            # Nothing reachable changed: every previous answer stands.
            previous = self._warm_previous(formula)
            if previous is not None:
                self.stats.sat_reused += 1
                return previous & states
        if isinstance(formula, TrueF):
            return states
        if isinstance(formula, FalseF):
            return frozenset()
        if isinstance(formula, Prop):
            return self._evaluate_prop(formula)
        if isinstance(formula, Deadlock):
            return self._deadlocks
        if isinstance(formula, Not):
            return states - self.sat(formula.operand)
        if isinstance(formula, And):
            return self.sat(formula.left) & self.sat(formula.right)
        if isinstance(formula, Or):
            return self.sat(formula.left) | self.sat(formula.right)
        if isinstance(formula, Implies):
            return (states - self.sat(formula.left)) | self.sat(formula.right)
        if isinstance(formula, (AX, EX)):
            return self._evaluate_next(formula)
        if isinstance(formula, (AF, EF, AG, EG)):
            operand = self.sat(formula.operand)
            if formula.interval is not None:
                return self._layers_for(formula, type(formula).__name__, operand, formula.interval)[0]
            return self._unbounded_unary(formula, type(formula).__name__, operand)
        if isinstance(formula, (AU, EU)):
            left, right = self.sat(formula.left), self.sat(formula.right)
            universal = isinstance(formula, AU)
            if formula.interval is not None:
                return self._bounded_until(formula, left, right, formula.interval, universal=universal)
            return self._unbounded_until(formula, left, right, universal=universal)
        raise FormulaError(f"unknown formula node {formula!r}")

    def _evaluate_prop(self, formula: Prop) -> frozenset[State]:
        patch = self._patchable(formula)
        label_map = self.automaton._labels
        name = formula.name
        if patch is not None:
            domain, boundary = patch
            self.stats.sat_patched += 1
            return boundary | frozenset(s for s in domain if name in label_map.get(s, ()))
        self.stats.sat_computed += 1
        return frozenset(s for s in self.automaton.states if name in label_map.get(s, ()))

    def _evaluate_next(self, formula: "AX | EX") -> frozenset[State]:
        operand = self.sat(formula.operand)
        universal = isinstance(formula, AX)
        patch = self._patchable(formula)
        if patch is not None:
            domain, boundary = patch
            self.stats.sat_patched += 1
        else:
            domain, boundary = self.automaton.states, frozenset()
            self.stats.sat_computed += 1
        if self.dense:
            graph, ids, resolve = self._dense_ready()
            candidates = [ids[s] for s in domain]
            member = self._dense_flags(operand)
            if universal:
                hits = graph.pre_forall(member, candidates, require_successor=False)
            else:
                hits = graph.pre_exists(member, candidates)
            return boundary | frozenset(resolve[i] for i in hits)
        if universal:
            local = frozenset(
                s for s in domain if all(t in operand for t in self._successors[s])
            )
        else:
            local = frozenset(
                s for s in domain if any(t in operand for t in self._successors[s])
            )
        return boundary | local

    # ------------------------------------------------------- unbounded cases

    def _solve_exists_reach(
        self,
        goal: frozenset[State],
        through: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``lfp Z = goal ∪ (through ∩ pre∃(Z))`` over ``domain``.

        Out-of-domain successors contribute through ``boundary`` (their
        final values).  ``through=None`` means "all states" (EF).
        """
        if self.dense:
            return self._dense_exists_reach(goal, through, domain, boundary)
        if self.parallelism > 1:
            return self._sharded_exists_reach(goal, through, domain, boundary)
        result: set[State] = set()
        queue: deque[State] = deque()

        def admit(state: State) -> None:
            if state not in result:
                result.add(state)
                queue.append(state)
                self.stats.fixpoint_work += 1

        for state in goal & domain:
            admit(state)
        if boundary:
            for state in domain:
                if state in result:
                    continue
                if through is not None and state not in through:
                    continue
                # boundary ⊆ complement of domain, so no domain test needed.
                if any(t in boundary for t in self._successors[state]):
                    admit(state)
        while queue:
            target = queue.popleft()
            for state in self._predecessors.get(target, ()):
                if state in result or state not in domain:
                    continue
                if through is not None and state not in through:
                    continue
                admit(state)
        return boundary | frozenset(result)

    def _solve_forall_reach(
        self,
        goal: frozenset[State],
        gate: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``lfp Z = goal ∪ (gate ∩ ¬δ ∩ pre∀(Z))`` over ``domain``."""
        if self.dense:
            return self._dense_forall_reach(goal, gate, domain, boundary)
        if self.parallelism > 1:
            return self._sharded_forall_reach(goal, gate, domain, boundary)
        result: set[State] = set(goal & domain)
        pending: dict[State, int] = {}
        queue: deque[State] = deque(result)
        self.stats.fixpoint_work += len(result)
        for state in domain:
            if state in result:
                continue
            if gate is not None and state not in gate:
                continue
            successors = self._successors[state]
            if not successors:
                continue  # deadlock: AF-style obligations fail here
            count = 0
            for target in successors:
                if target in domain:
                    count += 1  # decremented as in-domain targets are admitted
                elif target not in boundary:
                    count = -1  # an out-of-domain successor that never satisfies
                    break
            if count < 0:
                continue
            if count == 0:
                result.add(state)
                queue.append(state)
                self.stats.fixpoint_work += 1
            else:
                pending[state] = count
        while queue:
            target = queue.popleft()
            for state in self._predecessors.get(target, ()):
                count = pending.get(state)
                if count is None:
                    continue
                count -= 1
                if count == 0:
                    del pending[state]
                    result.add(state)
                    queue.append(state)
                    self.stats.fixpoint_work += 1
                else:
                    pending[state] = count
        return boundary | frozenset(result)

    def _solve_forall_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``gfp Z = keep ∩ pre∀(Z)`` over ``domain``, via the complement.

        A state violates ``AG keep`` iff it can reach — within the
        domain — a ``¬keep`` state or an out-of-domain successor whose
        fixed (boundary) value is unsatisfied, so only the *violating*
        region is ever traversed: when the invariant (mostly) holds,
        the solve is (nearly) free.  Deadlock states satisfy any
        invariant they locally satisfy, matching the maximal-path
        reading of ``pre∀``.  Callers pass the full state set as the
        domain (a global complement solve beats patching here because
        no per-edge scan of the surviving region is needed at all).
        """
        if self.dense:
            return self._dense_forall_invariant(keep, domain, boundary)
        if self.parallelism > 1:
            return self._sharded_forall_invariant(keep, domain, boundary)
        removed = set(domain - keep)
        queue: deque[State] = deque(removed)
        if boundary:
            good = domain | boundary
            for state in domain & keep:
                if state in removed:
                    continue
                if any(t not in good for t in self._successors[state]):
                    removed.add(state)
                    queue.append(state)
        self.stats.fixpoint_work += len(removed)
        while queue:
            state = queue.popleft()
            for pred in self._predecessors.get(state, ()):
                if pred not in removed and pred in domain:
                    removed.add(pred)
                    queue.append(pred)
                    self.stats.fixpoint_work += 1
        return boundary | ((keep & domain) - removed)

    def _solve_exists_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``gfp Z = keep ∩ (δ ∪ pre∃(Z))`` over ``domain``.

        As in :meth:`_solve_forall_invariant`, ``boundary`` and
        ``domain`` are disjoint, so support counting needs only one
        membership test per edge.
        """
        if self.dense:
            return self._dense_exists_invariant(keep, domain, boundary)
        if self.parallelism > 1:
            return self._sharded_exists_invariant(keep, domain, boundary)
        alive = set(keep & domain)
        good = alive | boundary if boundary else alive
        support: dict[State, int] = {}
        queue: deque[State] = deque()
        for state in alive:
            successors = self._successors[state]
            if not successors:
                continue  # deadlock: stays by the δ disjunct
            count = sum(1 for target in successors if target in good)
            if count == 0:
                queue.append(state)
            else:
                support[state] = count
        while queue:
            state = queue.popleft()
            if state not in alive:
                continue
            alive.discard(state)
            self.stats.fixpoint_work += 1
            for pred in self._predecessors.get(state, ()):
                if pred in alive and pred in support:
                    support[pred] -= 1
                    if support[pred] == 0:
                        del support[pred]
                        queue.append(pred)
        return boundary | frozenset(alive)

    # ----------------------------------------------------------- dense core
    #
    # The dense solvers are exact mirrors of the dict/set solvers, re-
    # expressed over interned ids: membership tests hit flat flag
    # buffers (one byte per state), worklists are plain id lists, and
    # edge scans walk the CSR adjacency arrays.  Conversion to and from
    # frozensets happens only at the solve boundary — every cache, warm
    # structure, and public API keeps the frozenset vocabulary, so dense
    # and dict checkers warm-start from each other freely.  Admission
    # order can differ from the dict solvers, but the fixpoints are
    # confluent, every state is admitted/removed exactly once, and the
    # handoff count depends only on edges and ownership — so sat sets
    # and all work counters are bit-identical (the differential tests
    # pin this).
    #
    # With parallelism=K the solve usually runs *inline*: one worklist,
    # admissions attributed to their owner shard (id % K), cross-shard
    # edges counted as handoffs analytically.  Because each state is
    # expanded exactly once whatever the schedule, this accounting is
    # provably identical to the round-based protocol's — without its
    # coordination overhead.  The genuine round protocol still runs
    # when a tracer wants per-shard ``checker.shard_round`` spans or an
    # execution strategy is forced.

    def _dense_ready(self):
        """The (graph, state→id map, id→state list) triple, built lazily."""
        graph = self._graph
        interner = self._interner
        assert interner is not None
        if graph is None:
            graph = DenseGraph.from_successors(interner, self._successors)
            self._graph = graph
        return graph, interner._ids, interner._states

    def _dense_flags(self, states: Iterable[State]) -> bytearray:
        """Byte-per-state membership flags over the interned id space."""
        assert self._graph is not None
        flags = bytearray(self._graph.size)
        ids = self._interner._ids
        for state in states:
            flags[ids[state]] = 1
        return flags

    def _owner_bytes(self) -> bytearray:
        """Shard owner of every id: contiguous ``id % K`` (no hashing)."""
        owner = self._owner_flags
        if owner is None:
            shards = self.parallelism
            owner = bytearray(i % shards for i in range(self._graph.size))
            self._owner_flags = owner
        return owner

    def _dense_wants_rounds(self) -> bool:
        return self.parallelism > 1 and (
            self.strategy is not None or self.tracer.enabled
        )

    def _dense_exists_reach(
        self,
        goal: frozenset[State],
        through: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        if self._dense_wants_rounds():
            return self._dense_rounds_exists_reach(goal, through, domain, boundary)
        own = self._owner_bytes() if self.parallelism > 1 else None
        work = [0] * self.parallelism if own is not None else None
        handoffs = 0
        dom = bytearray(graph.size)
        for state in domain:
            dom[ids[state]] = 1
        thr = self._dense_flags(through) if through is not None else None
        admitted = bytearray(graph.size)
        queue: list[int] = []
        push = queue.append
        for state in goal:
            ident = ids[state]
            if dom[ident] and not admitted[ident]:
                admitted[ident] = 1
                push(ident)
                if own is not None:
                    work[own[ident]] += 1
        if boundary:
            bnd = self._dense_flags(boundary)
            fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
            for state in domain:
                ident = ids[state]
                if admitted[ident]:
                    continue
                if thr is not None and not thr[ident]:
                    continue
                for edge in range(fwd_off[ident], fwd_off[ident + 1]):
                    if bnd[fwd_tgt[edge]]:
                        admitted[ident] = 1
                        push(ident)
                        if own is not None:
                            work[own[ident]] += 1
                        break
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources
        head = 0
        if own is None:
            while head < len(queue):
                target = queue[head]
                head += 1
                for edge in range(rev_off[target], rev_off[target + 1]):
                    pred = rev_src[edge]
                    if admitted[pred] or not dom[pred]:
                        continue
                    if thr is not None and not thr[pred]:
                        continue
                    admitted[pred] = 1
                    push(pred)
            self.stats.fixpoint_work += len(queue)
        else:
            while head < len(queue):
                target = queue[head]
                head += 1
                home = own[target]
                for edge in range(rev_off[target], rev_off[target + 1]):
                    pred = rev_src[edge]
                    if not dom[pred]:
                        continue
                    if thr is not None and not thr[pred]:
                        continue
                    if own[pred] != home:
                        handoffs += 1
                    if not admitted[pred]:
                        admitted[pred] = 1
                        push(pred)
                        work[own[pred]] += 1
            self._account_sharded(work, handoffs)
        return boundary | frozenset(resolve[i] for i in queue)

    def _dense_forall_reach(
        self,
        goal: frozenset[State],
        gate: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        if self._dense_wants_rounds():
            return self._dense_rounds_forall_reach(goal, gate, domain, boundary)
        own = self._owner_bytes() if self.parallelism > 1 else None
        work = [0] * self.parallelism if own is not None else None
        handoffs = 0
        dom = bytearray(graph.size)
        for state in domain:
            dom[ids[state]] = 1
        gatef = self._dense_flags(gate) if gate is not None else None
        bnd = self._dense_flags(boundary) if boundary else None
        admitted = bytearray(graph.size)
        pending = [0] * graph.size
        queue: list[int] = []
        push = queue.append
        for state in goal:
            ident = ids[state]
            if dom[ident] and not admitted[ident]:
                admitted[ident] = 1
                push(ident)
                if own is not None:
                    work[own[ident]] += 1
        fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
        for state in domain:
            ident = ids[state]
            if admitted[ident]:
                continue
            if gatef is not None and not gatef[ident]:
                continue
            lo, hi = fwd_off[ident], fwd_off[ident + 1]
            if lo == hi:
                continue  # deadlock: AF-style obligations fail here
            count = 0
            for edge in range(lo, hi):
                target = fwd_tgt[edge]
                if dom[target]:
                    count += 1  # decremented as in-domain targets are admitted
                elif bnd is None or not bnd[target]:
                    count = -1  # an out-of-domain successor that never satisfies
                    break
            if count < 0:
                continue
            if count == 0:
                admitted[ident] = 1
                push(ident)
                if own is not None:
                    work[own[ident]] += 1
            else:
                pending[ident] = count
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources
        head = 0
        while head < len(queue):
            target = queue[head]
            head += 1
            home = own[target] if own is not None else 0
            for edge in range(rev_off[target], rev_off[target + 1]):
                pred = rev_src[edge]
                if own is not None:
                    if not dom[pred]:
                        continue
                    if own[pred] != home:
                        handoffs += 1
                count = pending[pred]
                if count == 0:
                    continue
                count -= 1
                pending[pred] = count
                if count == 0:
                    admitted[pred] = 1
                    push(pred)
                    if own is not None:
                        work[own[pred]] += 1
        if own is None:
            self.stats.fixpoint_work += len(queue)
        else:
            self._account_sharded(work, handoffs)
        return boundary | frozenset(resolve[i] for i in queue)

    def _dense_forall_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        if self._dense_wants_rounds():
            return self._dense_rounds_forall_invariant(keep, domain, boundary)
        own = self._owner_bytes() if self.parallelism > 1 else None
        work = [0] * self.parallelism if own is not None else None
        handoffs = 0
        dom = bytearray(graph.size)
        for state in domain:
            dom[ids[state]] = 1
        keepf = self._dense_flags(keep)
        removed = bytearray(graph.size)
        queue: list[int] = []
        push = queue.append
        for state in domain:
            ident = ids[state]
            if not keepf[ident]:
                removed[ident] = 1
                push(ident)
                if own is not None:
                    work[own[ident]] += 1
        if boundary:
            good = bytearray(dom)
            for state in boundary:
                good[ids[state]] = 1
            fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
            for state in domain:
                ident = ids[state]
                if removed[ident] or not keepf[ident]:
                    continue
                for edge in range(fwd_off[ident], fwd_off[ident + 1]):
                    if not good[fwd_tgt[edge]]:
                        removed[ident] = 1
                        push(ident)
                        if own is not None:
                            work[own[ident]] += 1
                        break
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources
        head = 0
        while head < len(queue):
            target = queue[head]
            head += 1
            home = own[target] if own is not None else 0
            for edge in range(rev_off[target], rev_off[target + 1]):
                pred = rev_src[edge]
                if not dom[pred]:
                    continue
                if own is not None and own[pred] != home:
                    handoffs += 1
                if not removed[pred]:
                    removed[pred] = 1
                    push(pred)
                    if own is not None:
                        work[own[pred]] += 1
        if own is None:
            self.stats.fixpoint_work += len(queue)
        else:
            self._account_sharded(work, handoffs)
        return boundary | ((keep & domain) - frozenset(resolve[i] for i in queue))

    def _dense_exists_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        if self._dense_wants_rounds():
            return self._dense_rounds_exists_invariant(keep, domain, boundary)
        own = self._owner_bytes() if self.parallelism > 1 else None
        work = [0] * self.parallelism if own is not None else None
        handoffs = 0
        dom = bytearray(graph.size)
        for state in domain:
            dom[ids[state]] = 1
        alive = bytearray(graph.size)
        alive_ids: list[int] = []
        for state in keep:
            ident = ids[state]
            if dom[ident] and not alive[ident]:
                alive[ident] = 1
                alive_ids.append(ident)
        # Support counting tests membership in the *initial* keep∩domain
        # (plus boundary), exactly like the dict solver's static `good`.
        static = bytes(alive)
        good = bytearray(alive)
        for state in boundary:
            good[ids[state]] = 1
        support = [0] * graph.size
        queue: list[int] = []
        push = queue.append
        fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
        for ident in alive_ids:
            lo, hi = fwd_off[ident], fwd_off[ident + 1]
            if lo == hi:
                continue  # deadlock: stays by the δ disjunct
            count = 0
            for edge in range(lo, hi):
                if good[fwd_tgt[edge]]:
                    count += 1
            if count == 0:
                push(ident)
            else:
                support[ident] = count
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources
        head = 0
        discards = 0
        while head < len(queue):
            target = queue[head]
            head += 1
            if not alive[target]:
                continue
            alive[target] = 0
            discards += 1
            if own is not None:
                work[own[target]] += 1
            home = own[target] if own is not None else 0
            for edge in range(rev_off[target], rev_off[target + 1]):
                pred = rev_src[edge]
                if own is not None:
                    if not static[pred]:
                        continue
                    if own[pred] != home:
                        handoffs += 1
                if alive[pred] and support[pred] > 0:
                    support[pred] -= 1
                    if support[pred] == 0:
                        push(pred)
        if own is None:
            self.stats.fixpoint_work += discards
        else:
            self._account_sharded(work, handoffs)
        return boundary | frozenset(resolve[i] for i in alive_ids if alive[i])

    # The round-protocol twins of the dense solvers: identical seeds and
    # admission conditions, but per-shard worklists driven through
    # `_fixpoint_rounds` so forced strategies and per-shard tracer spans
    # behave exactly like the dict solvers.  Shared flat arrays replace
    # per-shard sets — safe because every entry is written only by its
    # owner shard (and read by others only via handoffs).

    def _dense_rounds_exists_reach(
        self,
        goal: frozenset[State],
        through: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        shards = self.parallelism
        own = self._owner_bytes()
        dom = bytearray(graph.size)
        dom_ids: list[int] = []
        for state in domain:
            ident = ids[state]
            dom[ident] = 1
            dom_ids.append(ident)
        thr = self._dense_flags(through) if through is not None else None
        admitted = bytearray(graph.size)
        queues: list[deque[int]] = [deque() for _ in range(shards)]
        inboxes: list[list[int]] = [[] for _ in range(shards)]
        work = [0] * shards
        for state in goal:
            ident = ids[state]
            if dom[ident] and not admitted[ident]:
                admitted[ident] = 1
                home = own[ident]
                queues[home].append(ident)
                work[home] += 1
        if boundary:
            bnd = self._dense_flags(boundary)
            fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
            for ident in dom_ids:
                if admitted[ident]:
                    continue
                if thr is not None and not thr[ident]:
                    continue
                for edge in range(fwd_off[ident], fwd_off[ident + 1]):
                    if bnd[fwd_tgt[edge]]:
                        admitted[ident] = 1
                        home = own[ident]
                        queues[home].append(ident)
                        work[home] += 1
                        break
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources

        def step(shard: int) -> list[tuple[int, int]]:
            queue = queues[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, int]] = []
            for ident in inbox:
                if not admitted[ident]:
                    admitted[ident] = 1
                    queue.append(ident)
                    work[shard] += 1
            while queue:
                target = queue.popleft()
                for edge in range(rev_off[target], rev_off[target + 1]):
                    pred = rev_src[edge]
                    if not dom[pred]:
                        continue
                    if thr is not None and not thr[pred]:
                        continue
                    home = own[pred]
                    if home != shard:
                        outbox.append((home, pred))
                    elif not admitted[pred]:
                        admitted[pred] = 1
                        queue.append(pred)
                        work[shard] += 1
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="exists_reach"
        )
        self._account_sharded(work, handoffs)
        return boundary | frozenset(resolve[i] for i in dom_ids if admitted[i])

    def _dense_rounds_forall_reach(
        self,
        goal: frozenset[State],
        gate: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        shards = self.parallelism
        own = self._owner_bytes()
        dom = bytearray(graph.size)
        dom_ids: list[int] = []
        for state in domain:
            ident = ids[state]
            dom[ident] = 1
            dom_ids.append(ident)
        goalf = self._dense_flags(goal)
        gatef = self._dense_flags(gate) if gate is not None else None
        bnd = self._dense_flags(boundary) if boundary else None
        admitted = bytearray(graph.size)
        pending = [0] * graph.size
        queues: list[deque[int]] = [deque() for _ in range(shards)]
        inboxes: list[list[int]] = [[] for _ in range(shards)]
        work = [0] * shards
        fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
        for ident in dom_ids:
            if goalf[ident]:
                admitted[ident] = 1
                home = own[ident]
                queues[home].append(ident)
                work[home] += 1
                continue
            if gatef is not None and not gatef[ident]:
                continue
            lo, hi = fwd_off[ident], fwd_off[ident + 1]
            if lo == hi:
                continue  # deadlock: AF-style obligations fail here
            count = 0
            for edge in range(lo, hi):
                target = fwd_tgt[edge]
                if dom[target]:
                    count += 1
                elif bnd is None or not bnd[target]:
                    count = -1
                    break
            if count < 0:
                continue
            if count == 0:
                admitted[ident] = 1
                home = own[ident]
                queues[home].append(ident)
                work[home] += 1
            else:
                pending[ident] = count
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources

        def step(shard: int) -> list[tuple[int, int]]:
            queue = queues[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, int]] = []

            def weaken(ident: int) -> None:
                # One decrement per admitted in-domain successor, so
                # inbox entries are deliberately *not* deduplicated.
                count = pending[ident]
                if count == 0:
                    return
                count -= 1
                pending[ident] = count
                if count == 0:
                    admitted[ident] = 1
                    queue.append(ident)
                    work[shard] += 1

            for ident in inbox:
                weaken(ident)
            while queue:
                target = queue.popleft()
                for edge in range(rev_off[target], rev_off[target + 1]):
                    pred = rev_src[edge]
                    if not dom[pred]:
                        continue
                    home = own[pred]
                    if home == shard:
                        weaken(pred)
                    else:
                        outbox.append((home, pred))
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="forall_reach"
        )
        self._account_sharded(work, handoffs)
        return boundary | frozenset(resolve[i] for i in dom_ids if admitted[i])

    def _dense_rounds_forall_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        shards = self.parallelism
        own = self._owner_bytes()
        dom = bytearray(graph.size)
        dom_ids: list[int] = []
        for state in domain:
            ident = ids[state]
            dom[ident] = 1
            dom_ids.append(ident)
        keepf = self._dense_flags(keep)
        good = None
        if boundary:
            good = bytearray(dom)
            for state in boundary:
                good[ids[state]] = 1
        removed = bytearray(graph.size)
        queues: list[deque[int]] = [deque() for _ in range(shards)]
        inboxes: list[list[int]] = [[] for _ in range(shards)]
        work = [0] * shards
        fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
        for ident in dom_ids:
            if keepf[ident]:
                if good is None:
                    continue
                for edge in range(fwd_off[ident], fwd_off[ident + 1]):
                    if not good[fwd_tgt[edge]]:
                        break
                else:
                    continue
            removed[ident] = 1
            home = own[ident]
            queues[home].append(ident)
            work[home] += 1
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources

        def step(shard: int) -> list[tuple[int, int]]:
            queue = queues[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, int]] = []
            for ident in inbox:
                if not removed[ident]:
                    removed[ident] = 1
                    queue.append(ident)
                    work[shard] += 1
            while queue:
                target = queue.popleft()
                for edge in range(rev_off[target], rev_off[target + 1]):
                    pred = rev_src[edge]
                    if not dom[pred]:
                        continue
                    home = own[pred]
                    if home != shard:
                        outbox.append((home, pred))
                    elif not removed[pred]:
                        removed[pred] = 1
                        queue.append(pred)
                        work[shard] += 1
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="forall_invariant"
        )
        self._account_sharded(work, handoffs)
        return boundary | (
            (keep & domain) - frozenset(resolve[i] for i in dom_ids if removed[i])
        )

    def _dense_rounds_exists_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        graph, ids, resolve = self._dense_ready()
        shards = self.parallelism
        own = self._owner_bytes()
        dom = bytearray(graph.size)
        for state in domain:
            dom[ids[state]] = 1
        alive = bytearray(graph.size)
        alive_ids: list[int] = []
        for state in keep:
            ident = ids[state]
            if dom[ident] and not alive[ident]:
                alive[ident] = 1
                alive_ids.append(ident)
        static = bytes(alive)
        good = bytearray(alive)
        for state in boundary:
            good[ids[state]] = 1
        support = [0] * graph.size
        queues: list[deque[int]] = [deque() for _ in range(shards)]
        inboxes: list[list[int]] = [[] for _ in range(shards)]
        work = [0] * shards
        fwd_off, fwd_tgt = graph.fwd_offsets, graph.fwd_targets
        for ident in alive_ids:
            lo, hi = fwd_off[ident], fwd_off[ident + 1]
            if lo == hi:
                continue  # deadlock: stays by the δ disjunct
            count = 0
            for edge in range(lo, hi):
                if good[fwd_tgt[edge]]:
                    count += 1
            if count == 0:
                queues[own[ident]].append(ident)
            else:
                support[ident] = count
        rev_off, rev_src = graph.rev_offsets, graph.rev_sources

        def step(shard: int) -> list[tuple[int, int]]:
            queue = queues[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, int]] = []

            def weaken(ident: int) -> None:
                count = support[ident]
                if count == 0:
                    return
                count -= 1
                support[ident] = count
                if count == 0:
                    queue.append(ident)

            for ident in inbox:
                weaken(ident)
            while queue:
                target = queue.popleft()
                if not alive[target]:
                    continue
                alive[target] = 0
                work[shard] += 1
                for edge in range(rev_off[target], rev_off[target + 1]):
                    pred = rev_src[edge]
                    if not static[pred]:
                        continue
                    home = own[pred]
                    if home == shard:
                        weaken(pred)
                    else:
                        outbox.append((home, pred))
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="exists_invariant"
        )
        self._account_sharded(work, handoffs)
        return boundary | frozenset(resolve[i] for i in alive_ids if alive[i])

    # ------------------------------------------------------ sharded fixpoints
    #
    # Each sharded solver mirrors its sequential twin exactly: the same
    # seeds, the same admission/removal conditions, the same per-event
    # work accounting — only the worklist is split by crc32-of-repr
    # ownership.  Workers touch nothing but their own shard's sets and
    # queues; cross-shard discoveries travel as (shard, state) handoffs
    # routed between rounds by `_fixpoint_rounds`.  Because the fixpoint
    # is confluent and every state is admitted/removed exactly once by
    # its owner, the merged result and the total work counter match the
    # sequential solver bit-for-bit; handoff counts depend only on the
    # edge structure and ownership, never on scheduling.

    def _shard_strategy(self, workload: int) -> str:
        strategy = self.strategy
        if strategy is None:
            strategy = select_strategy(workload, self.parallelism)
        if strategy == "process":
            # Worklists close over the shared predecessor map; pickling
            # it per shard would dwarf any solve, so threads stand in.
            strategy = "thread"
        return strategy

    def _fixpoint_rounds(
        self,
        strategy: str,
        inboxes: list[list[State]],
        queues: "list[deque[State]]",
        step,
        *,
        label: str = "",
    ) -> int:
        """Alternate parallel shard steps with deterministic handoff routing.

        ``step(shard)`` drains the shard's inbox and local worklist —
        mutating only that shard's structures — and returns its outbox
        of ``(shard, state)`` handoffs.  Outboxes are routed in shard
        order between rounds (``WorkerPool.map`` preserves task order);
        rounds continue until no shard holds work, i.e. until the
        global fixpoint.  Returns the number of handoffs emitted.

        With an enabled tracer, each shard's step of each round becomes
        one ``checker.shard_round`` span on the shard's own track — the
        worker times itself, so the span is faithful under any strategy
        that shares the tracer's address space (sequential/thread; the
        checker never runs ``process``, see :meth:`_shard_strategy`).
        """
        shards = len(inboxes)
        pool = self._pool
        tracer = self.tracer
        handoffs = 0
        round_index = 0
        worker = step
        if tracer.enabled:
            round_box = [0]

            def worker(shard: int):
                begin = time.perf_counter()
                outbox = step(shard)
                tracer.record(
                    "checker.shard_round",
                    track=f"checker/shard-{shard}",
                    start=begin,
                    duration=time.perf_counter() - begin,
                    solve=label,
                    round=round_box[0],
                )
                return outbox

        while True:
            active = [k for k in range(shards) if inboxes[k] or queues[k]]
            if not active:
                return handoffs
            if tracer.enabled:
                round_box[0] = round_index
            for outbox in pool.map(strategy, worker, active, workers=shards):
                handoffs += len(outbox)
                for target_shard, state in outbox:
                    inboxes[target_shard].append(state)
            round_index += 1

    def _account_sharded(self, work: list[int], handoffs: int) -> None:
        stats = self.stats
        stats.fixpoint_work += sum(work)
        for shard, amount in enumerate(work):
            stats._sharded_work[shard] += amount
        stats.shard_handoffs += handoffs

    def _sharded_exists_reach(
        self,
        goal: frozenset[State],
        through: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        shards = self.parallelism
        owner = self._owner
        assert owner is not None
        predecessors = self._predecessors
        successors = self._successors
        results: list[set[State]] = [set() for _ in range(shards)]
        queues: list[deque[State]] = [deque() for _ in range(shards)]
        inboxes: list[list[State]] = [[] for _ in range(shards)]
        work = [0] * shards

        for state in goal & domain:
            shard = owner[state]
            results[shard].add(state)
            queues[shard].append(state)
            work[shard] += 1
        if boundary:
            for state in domain:
                shard = owner[state]
                if state in results[shard]:
                    continue
                if through is not None and state not in through:
                    continue
                if any(t in boundary for t in successors[state]):
                    results[shard].add(state)
                    queues[shard].append(state)
                    work[shard] += 1

        def step(shard: int) -> list[tuple[int, State]]:
            result, queue = results[shard], queues[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, State]] = []
            for state in inbox:
                if state not in result:
                    result.add(state)
                    queue.append(state)
                    work[shard] += 1
            while queue:
                target = queue.popleft()
                for state in predecessors.get(target, ()):
                    if state not in domain:
                        continue
                    if through is not None and state not in through:
                        continue
                    home = owner[state]
                    if home != shard:
                        outbox.append((home, state))
                    elif state not in result:
                        result.add(state)
                        queue.append(state)
                        work[shard] += 1
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="exists_reach"
        )
        self._account_sharded(work, handoffs)
        return boundary | frozenset().union(*results)

    def _sharded_forall_reach(
        self,
        goal: frozenset[State],
        gate: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        shards = self.parallelism
        owner = self._owner
        assert owner is not None
        predecessors = self._predecessors
        successors = self._successors
        results: list[set[State]] = [set() for _ in range(shards)]
        pendings: list[dict[State, int]] = [{} for _ in range(shards)]
        queues: list[deque[State]] = [deque() for _ in range(shards)]
        inboxes: list[list[State]] = [[] for _ in range(shards)]
        work = [0] * shards

        for state in domain:
            shard = owner[state]
            if state in goal:
                results[shard].add(state)
                queues[shard].append(state)
                work[shard] += 1
                continue
            if gate is not None and state not in gate:
                continue
            outgoing = successors[state]
            if not outgoing:
                continue  # deadlock: AF-style obligations fail here
            count = 0
            for target in outgoing:
                if target in domain:
                    count += 1  # decremented as in-domain targets are admitted
                elif target not in boundary:
                    count = -1  # an out-of-domain successor that never satisfies
                    break
            if count < 0:
                continue
            if count == 0:
                results[shard].add(state)
                queues[shard].append(state)
                work[shard] += 1
            else:
                pendings[shard][state] = count

        def step(shard: int) -> list[tuple[int, State]]:
            result, queue, pending = results[shard], queues[shard], pendings[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, State]] = []

            def weaken(state: State) -> None:
                # One decrement per admitted in-domain successor, so
                # inbox entries are deliberately *not* deduplicated.
                count = pending.get(state)
                if count is None:
                    return
                count -= 1
                if count == 0:
                    del pending[state]
                    result.add(state)
                    queue.append(state)
                    work[shard] += 1
                else:
                    pending[state] = count

            for state in inbox:
                weaken(state)
            while queue:
                target = queue.popleft()
                for state in predecessors.get(target, ()):
                    if state not in domain:
                        continue
                    home = owner[state]
                    if home == shard:
                        weaken(state)
                    else:
                        outbox.append((home, state))
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="forall_reach"
        )
        self._account_sharded(work, handoffs)
        return boundary | frozenset().union(*results)

    def _sharded_forall_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        shards = self.parallelism
        owner = self._owner
        assert owner is not None
        predecessors = self._predecessors
        successors = self._successors
        removeds: list[set[State]] = [set() for _ in range(shards)]
        queues: list[deque[State]] = [deque() for _ in range(shards)]
        inboxes: list[list[State]] = [[] for _ in range(shards)]
        work = [0] * shards

        good = domain | boundary if boundary else None
        for state in domain:
            if state in keep and (
                good is None or all(t in good for t in successors[state])
            ):
                continue
            shard = owner[state]
            removeds[shard].add(state)
            queues[shard].append(state)
            work[shard] += 1

        def step(shard: int) -> list[tuple[int, State]]:
            removed, queue = removeds[shard], queues[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, State]] = []
            for state in inbox:
                if state not in removed:
                    removed.add(state)
                    queue.append(state)
                    work[shard] += 1
            while queue:
                state = queue.popleft()
                for pred in predecessors.get(state, ()):
                    if pred not in domain:
                        continue
                    home = owner[pred]
                    if home != shard:
                        outbox.append((home, pred))
                    elif pred not in removed:
                        removed.add(pred)
                        queue.append(pred)
                        work[shard] += 1
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="forall_invariant"
        )
        self._account_sharded(work, handoffs)
        return boundary | ((keep & domain) - frozenset().union(*removeds))

    def _sharded_exists_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        shards = self.parallelism
        owner = self._owner
        assert owner is not None
        predecessors = self._predecessors
        successors = self._successors
        alive_all = keep & domain
        good = alive_all | boundary if boundary else alive_all
        alives: list[set[State]] = [set() for _ in range(shards)]
        supports: list[dict[State, int]] = [{} for _ in range(shards)]
        queues: list[deque[State]] = [deque() for _ in range(shards)]
        inboxes: list[list[State]] = [[] for _ in range(shards)]
        work = [0] * shards

        for state in alive_all:
            shard = owner[state]
            alives[shard].add(state)
            outgoing = successors[state]
            if not outgoing:
                continue  # deadlock: stays by the δ disjunct
            count = sum(1 for target in outgoing if target in good)
            if count == 0:
                queues[shard].append(state)
            else:
                supports[shard][state] = count

        def step(shard: int) -> list[tuple[int, State]]:
            alive, support, queue = alives[shard], supports[shard], queues[shard]
            inbox, inboxes[shard] = inboxes[shard], []
            outbox: list[tuple[int, State]] = []

            def weaken(state: State) -> None:
                count = support.get(state)
                if count is None:
                    return
                count -= 1
                if count == 0:
                    del support[state]
                    queue.append(state)
                else:
                    support[state] = count

            for state in inbox:
                weaken(state)
            while queue:
                state = queue.popleft()
                if state not in alive:
                    continue
                alive.discard(state)
                work[shard] += 1
                for pred in predecessors.get(state, ()):
                    if pred not in alive_all:
                        continue
                    home = owner[pred]
                    if home == shard:
                        weaken(pred)
                    else:
                        outbox.append((home, pred))
            return outbox

        handoffs = self._fixpoint_rounds(
            self._shard_strategy(len(domain)), inboxes, queues, step, label="exists_invariant"
        )
        self._account_sharded(work, handoffs)
        return boundary | frozenset().union(*alives)

    def _fixpoint_region(self, formula: Formula) -> tuple[frozenset[State], frozenset[State]]:
        patch = self._patchable(formula)
        if patch is not None:
            self.stats.sat_patched += 1
            return patch
        self.stats.sat_computed += 1
        return self.automaton.states, frozenset()

    def _unbounded_unary(
        self, formula: Formula, operator: str, operand: frozenset[State]
    ) -> frozenset[State]:
        if operator == "AG":  # gfp Z = φ ∩ pre∀(Z)
            # The complement solve only traverses the violating region,
            # so a global solve is cheaper than an affected-region patch
            # (which would need a per-edge scan of the whole region).
            self.stats.sat_computed += 1
            with self.tracer.span(
                "checker.fixpoint", solve=operator, domain=len(self.automaton.states)
            ):
                return self._solve_forall_invariant(
                    operand, self.automaton.states, frozenset()
                )
        domain, boundary = self._fixpoint_region(formula)
        with self.tracer.span("checker.fixpoint", solve=operator, domain=len(domain)):
            if operator == "EF":  # lfp Z = φ ∪ pre∃(Z)
                return self._solve_exists_reach(operand, None, domain, boundary)
            if operator == "AF":  # lfp Z = φ ∪ (¬δ ∩ pre∀(Z))
                return self._solve_forall_reach(operand, None, domain, boundary)
            if operator == "EG":  # gfp Z = φ ∩ (δ ∪ pre∃(Z))
                return self._solve_exists_invariant(operand, domain, boundary)
        raise AssertionError(operator)

    def _unbounded_until(
        self,
        formula: Formula,
        left: frozenset[State],
        right: frozenset[State],
        *,
        universal: bool,
    ) -> frozenset[State]:
        domain, boundary = self._fixpoint_region(formula)
        solve = "AU" if universal else "EU"
        with self.tracer.span("checker.fixpoint", solve=solve, domain=len(domain)):
            if universal:  # lfp Z = ψ ∪ (φ ∩ ¬δ ∩ pre∀(Z))
                return self._solve_forall_reach(right, left, domain, boundary)
            return self._solve_exists_reach(right, left, domain, boundary)

    # --------------------------------------------------------- bounded cases

    def bounded_layers(
        self, operator: str, operand: frozenset[State], interval: Interval
    ) -> list[frozenset[State]]:
        """Backward DP layers for a bounded unary operator.

        ``layers[k]`` is the satisfaction set of the operator with the
        window shifted ``k`` steps into the past, i.e. with remaining
        window ``[max(low-k, 0), high-k]``.  ``layers[0]`` is the
        satisfaction set of the operator itself; deeper layers are used
        by the counterexample generator to steer failing paths.
        """
        memo_key = (operator, operand, interval.low, interval.high)
        cached = self._layer_memo.get(memo_key)
        if cached is None:
            cached = self._compute_layers(
                operator, operand, interval, self.automaton.states, None
            )
            self._layer_memo[memo_key] = cached
        return cached

    def _layers_for(
        self, formula: Formula, operator: str, operand: frozenset[State], interval: Interval
    ) -> list[frozenset[State]]:
        """Formula-keyed layers, patched from the warm checker if possible."""
        key = (formula, interval.low, interval.high)
        cached = self._formula_layers.get(key)
        if cached is not None:
            return cached
        warm_layers = self._warm.layers.get(key) if self._warm is not None else None
        if warm_layers is not None:
            domain = self._warm.affected
            self.stats.sat_patched += 1
            layers = self._compute_layers(operator, operand, interval, domain, warm_layers)
        else:
            self.stats.sat_computed += 1
            layers = self._compute_layers(operator, operand, interval, self.automaton.states, None)
        self._formula_layers[key] = layers
        memo_key = (operator, operand, interval.low, interval.high)
        self._layer_memo.setdefault(memo_key, layers)
        return layers

    def _compute_layers(
        self,
        operator: str,
        operand: frozenset[State],
        interval: Interval,
        domain: frozenset[State],
        warm_layers: "list[frozenset[State]] | None",
    ) -> list[frozenset[State]]:
        with self.tracer.span(
            "checker.bounded",
            solve=operator,
            domain=len(domain),
            window=interval.high - interval.low,
        ):
            return self._compute_layers_inner(operator, operand, interval, domain, warm_layers)

    def _compute_layers_inner(
        self,
        operator: str,
        operand: frozenset[State],
        interval: Interval,
        domain: frozenset[State],
        warm_layers: "list[frozenset[State]] | None",
    ) -> list[frozenset[State]]:
        if self.dense:
            return self._dense_layers(operator, operand, interval, domain, warm_layers)
        low, high = interval.low, interval.high
        unaffected = self._warm.unaffected if warm_layers is not None and self._warm else frozenset()

        def active(k: int) -> bool:  # is position k inside the window?
            return max(low - k, 0) == 0

        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        for k in range(high, -1, -1):
            satisfied: set[State] = set()
            last = k == high
            for state in domain:
                here = state in operand
                successors = self._successors[state]
                if operator == "AF":
                    if active(k) and here:
                        ok = True
                    elif last or not successors:
                        ok = False
                    else:
                        ok = all(t in layers[k + 1] for t in successors)
                elif operator == "EF":
                    if active(k) and here:
                        ok = True
                    elif last:
                        ok = False
                    else:
                        ok = any(t in layers[k + 1] for t in successors)
                elif operator == "AG":
                    ok = (not active(k) or here) and (
                        last or all(t in layers[k + 1] for t in successors)
                    )
                elif operator == "EG":
                    ok = (not active(k) or here) and (
                        last or not successors or any(t in layers[k + 1] for t in successors)
                    )
                else:
                    raise AssertionError(operator)
                if ok:
                    satisfied.add(state)
                self.stats.fixpoint_work += 1
            layer = frozenset(satisfied)
            if warm_layers is not None:
                layer |= warm_layers[k] & unaffected
            layers[k] = layer
        return layers

    def _dense_layers(
        self,
        operator: str,
        operand: frozenset[State],
        interval: Interval,
        domain: frozenset[State],
        warm_layers: "list[frozenset[State]] | None",
    ) -> list[frozenset[State]]:
        """The bounded unary DP as per-layer predecessor images.

        Each layer is one ``pre∀``/``pre∃`` image of the layer above it
        over the candidate ids — the per-state branch structure of the
        dict DP collapses into a kernel call plus set algebra on id
        lists, with the same per-layer work charge (``|domain|``).

        Cold solves keep the whole DP in id space: the next layer's
        flag buffer is written straight from the satisfied ids, so the
        per-layer cost is one kernel call plus the (contract-mandated)
        frozenset materialisation.  Warm solves patch each layer with
        the unaffected slice of the previous run first and therefore
        re-derive the flags from the patched frozenset.
        """
        low, high = interval.low, interval.high
        unaffected = (
            self._warm.unaffected if warm_layers is not None and self._warm else frozenset()
        )
        graph, ids, resolve = self._dense_ready()
        size = graph.size
        # ``array('I')`` candidate vectors: the numpy kernels convert
        # them via the buffer protocol instead of walking a list.
        dom_ids = array("I", sorted(ids[s] for s in domain))
        operand_flags = self._dense_flags(operand)
        holds_here = array("I", (i for i in dom_ids if operand_flags[i]))
        lacks_here = array("I", (i for i in dom_ids if not operand_flags[i]))
        work_per_layer = len(dom_ids)
        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        next_flags: bytearray | None = None
        for k in range(high, -1, -1):
            last = k == high
            active = max(low - k, 0) == 0  # is position k inside the window?
            if operator in ("AF", "EF"):
                base = holds_here if active else ()
                cand = lacks_here if active else dom_ids
                if last:
                    satisfied = list(base)
                elif operator == "AF":
                    satisfied = list(base) + graph.pre_forall(
                        next_flags, cand, require_successor=True
                    )
                else:
                    satisfied = list(base) + graph.pre_exists(next_flags, cand)
            else:  # AG / EG
                gate = holds_here if active else dom_ids
                if last:
                    satisfied = gate
                elif operator == "AG":
                    satisfied = graph.pre_forall(next_flags, gate, require_successor=False)
                elif operator == "EG":
                    satisfied = graph.pre_exists(next_flags, gate, empty_satisfies=True)
                else:
                    raise AssertionError(operator)
            self.stats.fixpoint_work += work_per_layer
            layer = frozenset(map(resolve.__getitem__, satisfied))
            if warm_layers is not None:
                layer |= warm_layers[k] & unaffected
            layers[k] = layer
            if k:
                if warm_layers is not None:
                    next_flags = self._dense_flags(layer)
                else:
                    next_flags = flags_of_ids(satisfied, size)
        return layers

    def _bounded_until(
        self,
        formula: Formula,
        left: frozenset[State],
        right: frozenset[State],
        interval: Interval,
        *,
        universal: bool,
    ) -> frozenset[State]:
        key = (formula, interval.low, interval.high)
        cached = self._formula_layers.get(key)
        if cached is not None:
            return cached[0]
        warm_layers = self._warm.layers.get(key) if self._warm is not None else None
        if warm_layers is not None:
            domain = self._warm.affected
            unaffected = self._warm.unaffected
            self.stats.sat_patched += 1
        else:
            domain = self.automaton.states
            unaffected = frozenset()
            self.stats.sat_computed += 1
        low, high = interval.low, interval.high
        solve = "AU" if universal else "EU"
        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        with self.tracer.span(
            "checker.bounded", solve=solve, domain=len(domain), window=high - low
        ):
            if self.dense:
                layers = self._dense_until_layers(
                    left, right, interval, domain, unaffected, warm_layers,
                    universal=universal,
                )
            else:
                for k in range(high, -1, -1):
                    satisfied: set[State] = set()
                    last = k == high
                    for state in domain:
                        window_open = max(low - k, 0) == 0
                        if window_open and state in right:
                            satisfied.add(state)
                            continue
                        if last or state not in left:
                            continue
                        successors = self._successors[state]
                        if universal:
                            if successors and all(t in layers[k + 1] for t in successors):
                                satisfied.add(state)
                        else:
                            if any(t in layers[k + 1] for t in successors):
                                satisfied.add(state)
                        self.stats.fixpoint_work += 1
                    layer = frozenset(satisfied)
                    if warm_layers is not None:
                        layer |= warm_layers[k] & unaffected
                    layers[k] = layer
        self._formula_layers[key] = layers
        return layers[0]

    def _dense_until_layers(
        self,
        left: frozenset[State],
        right: frozenset[State],
        interval: Interval,
        domain: frozenset[State],
        unaffected: frozenset[State],
        warm_layers: "list[frozenset[State]] | None",
        *,
        universal: bool,
    ) -> list[frozenset[State]]:
        """The bounded-until DP over interned ids (see :meth:`_dense_layers`)."""
        low, high = interval.low, interval.high
        graph, ids, resolve = self._dense_ready()
        size = graph.size
        dom_ids = array("I", sorted(ids[s] for s in domain))
        left_flags = self._dense_flags(left)
        right_flags = self._dense_flags(right)
        right_here = [i for i in dom_ids if right_flags[i]]
        cand_open = array("I", (i for i in dom_ids if left_flags[i] and not right_flags[i]))
        cand_closed = array("I", (i for i in dom_ids if left_flags[i]))
        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        next_flags: bytearray | None = None
        for k in range(high, -1, -1):
            last = k == high
            window_open = max(low - k, 0) == 0
            base = right_here if window_open else ()
            cand = cand_open if window_open else cand_closed
            if last:
                satisfied = list(base)
            else:
                if universal:
                    hits = graph.pre_forall(next_flags, cand, require_successor=True)
                else:
                    hits = graph.pre_exists(next_flags, cand)
                satisfied = list(base) + hits
                self.stats.fixpoint_work += len(cand)
            layer = frozenset(map(resolve.__getitem__, satisfied))
            if warm_layers is not None:
                layer |= warm_layers[k] & unaffected
            layers[k] = layer
            if k:
                if warm_layers is not None:
                    next_flags = self._dense_flags(layer)
                else:
                    next_flags = flags_of_ids(satisfied, size)
        return layers


def check(automaton: Automaton, formula: Formula) -> CheckResult:
    """One-shot convenience wrapper around :class:`ModelChecker`."""
    return ModelChecker(automaton).check(formula)
