"""CTL/CCTL model checking over labeled automata (§2.1, §4.1).

The checker evaluates formulas over the automaton's state graph with
*maximal path* semantics: a path is maximal when it is infinite or ends
in a deadlock state.  This matters because the paper's verification
obligation is always ``φ ∧ ¬δ`` — deadlock states are first-class
citizens, not semantic accidents:

* ``AX φ`` is vacuously true in a deadlock state;
* ``AF φ`` fails in a deadlock state unless ``φ`` already holds there;
* ``EG φ`` is satisfied by a path that deadlocks while ``φ`` holds.

Unbounded operators use the standard least/greatest fixpoint
characterisations, computed with linear-time predecessor worklists
(insertion for least fixpoints, counted removal for greatest ones)
rather than whole-state-space sweeps.  Bounded (CCTL) operators use a
backward dynamic program over the remaining window, exploiting that
every transition takes exactly one time unit.

Warm start (incremental re-checking)
------------------------------------

``ModelChecker(automaton, warm_from=prev, dirty_states=seeds)`` reuses
work from a checker built for the *previous* version of the automaton.
``seeds`` must contain every state whose outgoing transitions or labels
differ from the previous automaton (new states are detected
automatically).  Because every CTL value of a state depends only on the
subgraph reachable from it, any state that cannot reach a seed — the
*unaffected region* — keeps its previous satisfaction values verbatim;
fixpoints are re-solved only over the affected region, with the
unaffected boundary supplying fixed values.  This is what makes
re-verification after a small learning step nearly free (see
``docs/performance.md``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..automata.automaton import Automaton, State
from ..errors import FormulaError
from .formulas import (
    AF,
    AG,
    AU,
    AX,
    And,
    Deadlock,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Implies,
    Interval,
    Not,
    Or,
    Prop,
    TrueF,
)

__all__ = ["CheckResult", "CheckerStats", "ModelChecker", "check"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one formula against one automaton."""

    formula: Formula
    holds: bool
    satisfying: frozenset[State]
    violating_initial: frozenset[State]

    def __bool__(self) -> bool:
        return self.holds


@dataclass
class CheckerStats:
    """Work counters, mainly interesting for warm-started checkers."""

    successors_reused: int = 0  #: per-state successor tuples taken from the warm checker
    sat_reused: int = 0  #: formulas answered entirely from the warm cache
    sat_patched: int = 0  #: formulas re-solved only over the affected region
    sat_computed: int = 0  #: formulas evaluated from scratch
    affected_states: int = 0  #: size of the affected region (0 when cold)
    fixpoint_work: int = 0  #: worklist insertions/removals across all fixpoints

    def as_dict(self) -> dict[str, int]:
        return {
            "successors_reused": self.successors_reused,
            "sat_reused": self.sat_reused,
            "sat_patched": self.sat_patched,
            "sat_computed": self.sat_computed,
            "affected_states": self.affected_states,
            "fixpoint_work": self.fixpoint_work,
        }


@dataclass
class _WarmState:
    """What survives from the previous iteration's checker."""

    states: frozenset[State]
    cache: dict[Formula, frozenset[State]]
    layers: dict[tuple, list[frozenset[State]]]
    affected: frozenset[State] = field(default_factory=frozenset)
    unaffected: frozenset[State] = field(default_factory=frozenset)


class ModelChecker:
    """A reusable checker for one automaton.

    Satisfaction sets are memoised per (sub)formula, so checking several
    properties — or re-explaining subformulas during counterexample
    construction — does not repeat fixpoint computations.

    Parameters
    ----------
    automaton:
        The model to check.
    warm_from:
        A checker previously built for an *earlier version* of the same
        automaton.  Structural maps and satisfaction sets are carried
        over for every state outside the affected region.
    dirty_states:
        Required with ``warm_from``: every state of ``automaton`` whose
        outgoing transitions or labels differ from the warm checker's
        automaton.  States absent from the warm automaton are treated as
        dirty automatically; removed states need no mention (their
        erstwhile predecessors must have changed and hence be listed).
    """

    def __init__(
        self,
        automaton: Automaton,
        *,
        warm_from: "ModelChecker | None" = None,
        dirty_states: Iterable[State] = (),
    ):
        self.automaton = automaton
        self.stats = CheckerStats()
        states = automaton.states

        old_successors = warm_from._successors if warm_from is not None else None
        dirty = frozenset(dirty_states) if warm_from is not None else frozenset()
        successors: dict[State, tuple[State, ...]] = {}
        fresh: list[State] = []
        for state in states:
            if old_successors is not None and state not in dirty:
                cached = old_successors.get(state)
                if cached is not None:
                    successors[state] = cached
                    self.stats.successors_reused += 1
                    continue
            successors[state] = tuple(
                sorted({t.target for t in automaton.transitions_from(state)}, key=repr)
            )
            fresh.append(state)
        self._successors = successors
        if old_successors is None:
            predecessors: dict[State, list[State]] = {}
            for state, succ in successors.items():
                for target in succ:
                    predecessors.setdefault(target, []).append(state)
        else:
            # Warm start: splice only the edges of re-derived and removed
            # states into a copy of the previous predecessor map.
            assert warm_from is not None
            predecessors = {
                target: preds
                for target, preds in warm_from._predecessors.items()
                if target in states
            }
            copied: set[State] = set()

            def detach(source: State, targets: tuple[State, ...]) -> None:
                for target in targets:
                    preds = predecessors.get(target)
                    if preds is None:
                        continue
                    if target not in copied:
                        preds = list(preds)
                        predecessors[target] = preds
                        copied.add(target)
                    if source in preds:
                        preds.remove(source)

            def attach(source: State, targets: tuple[State, ...]) -> None:
                for target in targets:
                    preds = predecessors.get(target)
                    if preds is None:
                        predecessors[target] = [source]
                        copied.add(target)
                        continue
                    if target not in copied:
                        preds = list(preds)
                        predecessors[target] = preds
                        copied.add(target)
                    preds.append(source)

            for state in fresh:
                old = old_successors.get(state)
                if old is not None:
                    detach(state, old)
            for state in warm_from.automaton.states:
                if state not in states:
                    detach(state, old_successors.get(state, ()))
            for state in fresh:
                attach(state, successors[state])
        self._predecessors = predecessors
        self._deadlocks = frozenset(s for s, succ in successors.items() if not succ)
        self._cache: dict[Formula, frozenset[State]] = {}
        self._layer_memo: dict[tuple, list[frozenset[State]]] = {}
        self._formula_layers: dict[tuple, list[frozenset[State]]] = {}
        self._warm = self._prepare_warm(warm_from, dirty) if warm_from is not None else None

    def _prepare_warm(self, warm_from: "ModelChecker", dirty: frozenset[State]) -> "_WarmState | None":
        states = self.automaton.states
        seeds = {s for s in states if s in dirty or s not in warm_from._successors}
        # Affected region: everything that can reach a seed.  Values of
        # all other states are untouched by the change, because a CTL
        # value only depends on the reachable subgraph.
        affected = set(seeds)
        queue = deque(seeds)
        while queue:
            state = queue.popleft()
            for pred in self._predecessors.get(state, ()):
                if pred not in affected:
                    affected.add(pred)
                    queue.append(pred)
        warm = _WarmState(
            states=warm_from.automaton.states,
            cache=warm_from._cache,
            layers=warm_from._formula_layers,
            affected=frozenset(affected),
            unaffected=states - affected,
        )
        self.stats.affected_states = len(warm.affected)
        if not warm.affected:
            # Nothing changed: bounded-operator layers stay valid and must
            # travel forward so the *next* warm start can still patch them.
            self._formula_layers.update(warm_from._formula_layers)
        return warm

    # ------------------------------------------------------------- public API

    def sat(self, formula: Formula) -> frozenset[State]:
        """The set of states satisfying ``formula``."""
        cached = self._cache.get(formula)
        if cached is None:
            cached = self._evaluate(formula)
            self._cache[formula] = cached
        return cached

    def holds(self, formula: Formula) -> bool:
        """``M ⊨ φ``: every initial state satisfies the formula."""
        satisfying = self.sat(formula)
        return all(q in satisfying for q in self.automaton.initial)

    def check(self, formula: Formula) -> CheckResult:
        satisfying = self.sat(formula)
        violating = frozenset(q for q in self.automaton.initial if q not in satisfying)
        return CheckResult(formula, not violating, satisfying, violating)

    @property
    def deadlock_states(self) -> frozenset[State]:
        return self._deadlocks

    def successors(self, state: State) -> tuple[State, ...]:
        return self._successors[state]

    # -------------------------------------------------------------- warm help

    def _warm_previous(self, formula: Formula) -> frozenset[State] | None:
        """The previous iteration's sat set for ``formula``, if any."""
        if self._warm is None:
            return None
        return self._warm.cache.get(formula)

    def _patchable(self, formula: Formula) -> tuple[frozenset[State], frozenset[State]] | None:
        """``(domain, boundary)`` for an affected-region re-solve, or None.

        ``domain`` is the affected region to re-solve over; ``boundary``
        is the (already final) satisfaction on the unaffected region.
        Returns None when there is no warm value to patch from, in which
        case the caller evaluates from scratch.
        """
        previous = self._warm_previous(formula)
        if previous is None:
            return None
        warm = self._warm
        assert warm is not None
        return warm.affected, previous & warm.unaffected

    # ------------------------------------------------------------ evaluation

    def _evaluate(self, formula: Formula) -> frozenset[State]:
        states = self.automaton.states
        if self._warm is not None and not self._warm.affected:
            # Nothing reachable changed: every previous answer stands.
            previous = self._warm_previous(formula)
            if previous is not None:
                self.stats.sat_reused += 1
                return previous & states
        if isinstance(formula, TrueF):
            return states
        if isinstance(formula, FalseF):
            return frozenset()
        if isinstance(formula, Prop):
            return self._evaluate_prop(formula)
        if isinstance(formula, Deadlock):
            return self._deadlocks
        if isinstance(formula, Not):
            return states - self.sat(formula.operand)
        if isinstance(formula, And):
            return self.sat(formula.left) & self.sat(formula.right)
        if isinstance(formula, Or):
            return self.sat(formula.left) | self.sat(formula.right)
        if isinstance(formula, Implies):
            return (states - self.sat(formula.left)) | self.sat(formula.right)
        if isinstance(formula, (AX, EX)):
            return self._evaluate_next(formula)
        if isinstance(formula, (AF, EF, AG, EG)):
            operand = self.sat(formula.operand)
            if formula.interval is not None:
                return self._layers_for(formula, type(formula).__name__, operand, formula.interval)[0]
            return self._unbounded_unary(formula, type(formula).__name__, operand)
        if isinstance(formula, (AU, EU)):
            left, right = self.sat(formula.left), self.sat(formula.right)
            universal = isinstance(formula, AU)
            if formula.interval is not None:
                return self._bounded_until(formula, left, right, formula.interval, universal=universal)
            return self._unbounded_until(formula, left, right, universal=universal)
        raise FormulaError(f"unknown formula node {formula!r}")

    def _evaluate_prop(self, formula: Prop) -> frozenset[State]:
        patch = self._patchable(formula)
        label_map = self.automaton._labels
        name = formula.name
        if patch is not None:
            domain, boundary = patch
            self.stats.sat_patched += 1
            return boundary | frozenset(s for s in domain if name in label_map.get(s, ()))
        self.stats.sat_computed += 1
        return frozenset(s for s in self.automaton.states if name in label_map.get(s, ()))

    def _evaluate_next(self, formula: "AX | EX") -> frozenset[State]:
        operand = self.sat(formula.operand)
        universal = isinstance(formula, AX)
        patch = self._patchable(formula)
        if patch is not None:
            domain, boundary = patch
            self.stats.sat_patched += 1
        else:
            domain, boundary = self.automaton.states, frozenset()
            self.stats.sat_computed += 1
        if universal:
            local = frozenset(
                s for s in domain if all(t in operand for t in self._successors[s])
            )
        else:
            local = frozenset(
                s for s in domain if any(t in operand for t in self._successors[s])
            )
        return boundary | local

    # ------------------------------------------------------- unbounded cases

    def _solve_exists_reach(
        self,
        goal: frozenset[State],
        through: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``lfp Z = goal ∪ (through ∩ pre∃(Z))`` over ``domain``.

        Out-of-domain successors contribute through ``boundary`` (their
        final values).  ``through=None`` means "all states" (EF).
        """
        result: set[State] = set()
        queue: deque[State] = deque()

        def admit(state: State) -> None:
            if state not in result:
                result.add(state)
                queue.append(state)
                self.stats.fixpoint_work += 1

        for state in goal & domain:
            admit(state)
        if boundary:
            for state in domain:
                if state in result:
                    continue
                if through is not None and state not in through:
                    continue
                # boundary ⊆ complement of domain, so no domain test needed.
                if any(t in boundary for t in self._successors[state]):
                    admit(state)
        while queue:
            target = queue.popleft()
            for state in self._predecessors.get(target, ()):
                if state in result or state not in domain:
                    continue
                if through is not None and state not in through:
                    continue
                admit(state)
        return boundary | frozenset(result)

    def _solve_forall_reach(
        self,
        goal: frozenset[State],
        gate: frozenset[State] | None,
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``lfp Z = goal ∪ (gate ∩ ¬δ ∩ pre∀(Z))`` over ``domain``."""
        result: set[State] = set(goal & domain)
        pending: dict[State, int] = {}
        queue: deque[State] = deque(result)
        self.stats.fixpoint_work += len(result)
        for state in domain:
            if state in result:
                continue
            if gate is not None and state not in gate:
                continue
            successors = self._successors[state]
            if not successors:
                continue  # deadlock: AF-style obligations fail here
            count = 0
            for target in successors:
                if target in domain:
                    count += 1  # decremented as in-domain targets are admitted
                elif target not in boundary:
                    count = -1  # an out-of-domain successor that never satisfies
                    break
            if count < 0:
                continue
            if count == 0:
                result.add(state)
                queue.append(state)
                self.stats.fixpoint_work += 1
            else:
                pending[state] = count
        while queue:
            target = queue.popleft()
            for state in self._predecessors.get(target, ()):
                count = pending.get(state)
                if count is None:
                    continue
                count -= 1
                if count == 0:
                    del pending[state]
                    result.add(state)
                    queue.append(state)
                    self.stats.fixpoint_work += 1
                else:
                    pending[state] = count
        return boundary | frozenset(result)

    def _solve_forall_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``gfp Z = keep ∩ pre∀(Z)`` over ``domain``, via the complement.

        A state violates ``AG keep`` iff it can reach — within the
        domain — a ``¬keep`` state or an out-of-domain successor whose
        fixed (boundary) value is unsatisfied, so only the *violating*
        region is ever traversed: when the invariant (mostly) holds,
        the solve is (nearly) free.  Deadlock states satisfy any
        invariant they locally satisfy, matching the maximal-path
        reading of ``pre∀``.  Callers pass the full state set as the
        domain (a global complement solve beats patching here because
        no per-edge scan of the surviving region is needed at all).
        """
        removed = set(domain - keep)
        queue: deque[State] = deque(removed)
        if boundary:
            good = domain | boundary
            for state in domain & keep:
                if state in removed:
                    continue
                if any(t not in good for t in self._successors[state]):
                    removed.add(state)
                    queue.append(state)
        self.stats.fixpoint_work += len(removed)
        while queue:
            state = queue.popleft()
            for pred in self._predecessors.get(state, ()):
                if pred not in removed and pred in domain:
                    removed.add(pred)
                    queue.append(pred)
                    self.stats.fixpoint_work += 1
        return boundary | ((keep & domain) - removed)

    def _solve_exists_invariant(
        self,
        keep: frozenset[State],
        domain: frozenset[State],
        boundary: frozenset[State],
    ) -> frozenset[State]:
        """``gfp Z = keep ∩ (δ ∪ pre∃(Z))`` over ``domain``.

        As in :meth:`_solve_forall_invariant`, ``boundary`` and
        ``domain`` are disjoint, so support counting needs only one
        membership test per edge.
        """
        alive = set(keep & domain)
        good = alive | boundary if boundary else alive
        support: dict[State, int] = {}
        queue: deque[State] = deque()
        for state in alive:
            successors = self._successors[state]
            if not successors:
                continue  # deadlock: stays by the δ disjunct
            count = sum(1 for target in successors if target in good)
            if count == 0:
                queue.append(state)
            else:
                support[state] = count
        while queue:
            state = queue.popleft()
            if state not in alive:
                continue
            alive.discard(state)
            self.stats.fixpoint_work += 1
            for pred in self._predecessors.get(state, ()):
                if pred in alive and pred in support:
                    support[pred] -= 1
                    if support[pred] == 0:
                        del support[pred]
                        queue.append(pred)
        return boundary | frozenset(alive)

    def _fixpoint_region(self, formula: Formula) -> tuple[frozenset[State], frozenset[State]]:
        patch = self._patchable(formula)
        if patch is not None:
            self.stats.sat_patched += 1
            return patch
        self.stats.sat_computed += 1
        return self.automaton.states, frozenset()

    def _unbounded_unary(
        self, formula: Formula, operator: str, operand: frozenset[State]
    ) -> frozenset[State]:
        if operator == "AG":  # gfp Z = φ ∩ pre∀(Z)
            # The complement solve only traverses the violating region,
            # so a global solve is cheaper than an affected-region patch
            # (which would need a per-edge scan of the whole region).
            self.stats.sat_computed += 1
            return self._solve_forall_invariant(operand, self.automaton.states, frozenset())
        domain, boundary = self._fixpoint_region(formula)
        if operator == "EF":  # lfp Z = φ ∪ pre∃(Z)
            return self._solve_exists_reach(operand, None, domain, boundary)
        if operator == "AF":  # lfp Z = φ ∪ (¬δ ∩ pre∀(Z))
            return self._solve_forall_reach(operand, None, domain, boundary)
        if operator == "EG":  # gfp Z = φ ∩ (δ ∪ pre∃(Z))
            return self._solve_exists_invariant(operand, domain, boundary)
        raise AssertionError(operator)

    def _unbounded_until(
        self,
        formula: Formula,
        left: frozenset[State],
        right: frozenset[State],
        *,
        universal: bool,
    ) -> frozenset[State]:
        domain, boundary = self._fixpoint_region(formula)
        if universal:  # lfp Z = ψ ∪ (φ ∩ ¬δ ∩ pre∀(Z))
            return self._solve_forall_reach(right, left, domain, boundary)
        return self._solve_exists_reach(right, left, domain, boundary)

    # --------------------------------------------------------- bounded cases

    def bounded_layers(
        self, operator: str, operand: frozenset[State], interval: Interval
    ) -> list[frozenset[State]]:
        """Backward DP layers for a bounded unary operator.

        ``layers[k]`` is the satisfaction set of the operator with the
        window shifted ``k`` steps into the past, i.e. with remaining
        window ``[max(low-k, 0), high-k]``.  ``layers[0]`` is the
        satisfaction set of the operator itself; deeper layers are used
        by the counterexample generator to steer failing paths.
        """
        memo_key = (operator, operand, interval.low, interval.high)
        cached = self._layer_memo.get(memo_key)
        if cached is None:
            cached = self._compute_layers(
                operator, operand, interval, self.automaton.states, None
            )
            self._layer_memo[memo_key] = cached
        return cached

    def _layers_for(
        self, formula: Formula, operator: str, operand: frozenset[State], interval: Interval
    ) -> list[frozenset[State]]:
        """Formula-keyed layers, patched from the warm checker if possible."""
        key = (formula, interval.low, interval.high)
        cached = self._formula_layers.get(key)
        if cached is not None:
            return cached
        warm_layers = self._warm.layers.get(key) if self._warm is not None else None
        if warm_layers is not None:
            domain = self._warm.affected
            self.stats.sat_patched += 1
            layers = self._compute_layers(operator, operand, interval, domain, warm_layers)
        else:
            self.stats.sat_computed += 1
            layers = self._compute_layers(operator, operand, interval, self.automaton.states, None)
        self._formula_layers[key] = layers
        memo_key = (operator, operand, interval.low, interval.high)
        self._layer_memo.setdefault(memo_key, layers)
        return layers

    def _compute_layers(
        self,
        operator: str,
        operand: frozenset[State],
        interval: Interval,
        domain: frozenset[State],
        warm_layers: "list[frozenset[State]] | None",
    ) -> list[frozenset[State]]:
        low, high = interval.low, interval.high
        unaffected = self._warm.unaffected if warm_layers is not None and self._warm else frozenset()

        def active(k: int) -> bool:  # is position k inside the window?
            return max(low - k, 0) == 0

        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        for k in range(high, -1, -1):
            satisfied: set[State] = set()
            last = k == high
            for state in domain:
                here = state in operand
                successors = self._successors[state]
                if operator == "AF":
                    if active(k) and here:
                        ok = True
                    elif last or not successors:
                        ok = False
                    else:
                        ok = all(t in layers[k + 1] for t in successors)
                elif operator == "EF":
                    if active(k) and here:
                        ok = True
                    elif last:
                        ok = False
                    else:
                        ok = any(t in layers[k + 1] for t in successors)
                elif operator == "AG":
                    ok = (not active(k) or here) and (
                        last or all(t in layers[k + 1] for t in successors)
                    )
                elif operator == "EG":
                    ok = (not active(k) or here) and (
                        last or not successors or any(t in layers[k + 1] for t in successors)
                    )
                else:
                    raise AssertionError(operator)
                if ok:
                    satisfied.add(state)
                self.stats.fixpoint_work += 1
            layer = frozenset(satisfied)
            if warm_layers is not None:
                layer |= warm_layers[k] & unaffected
            layers[k] = layer
        return layers

    def _bounded_until(
        self,
        formula: Formula,
        left: frozenset[State],
        right: frozenset[State],
        interval: Interval,
        *,
        universal: bool,
    ) -> frozenset[State]:
        key = (formula, interval.low, interval.high)
        cached = self._formula_layers.get(key)
        if cached is not None:
            return cached[0]
        warm_layers = self._warm.layers.get(key) if self._warm is not None else None
        if warm_layers is not None:
            domain = self._warm.affected
            unaffected = self._warm.unaffected
            self.stats.sat_patched += 1
        else:
            domain = self.automaton.states
            unaffected = frozenset()
            self.stats.sat_computed += 1
        low, high = interval.low, interval.high
        layers: list[frozenset[State]] = [frozenset()] * (high + 1)
        for k in range(high, -1, -1):
            satisfied: set[State] = set()
            last = k == high
            for state in domain:
                window_open = max(low - k, 0) == 0
                if window_open and state in right:
                    satisfied.add(state)
                    continue
                if last or state not in left:
                    continue
                successors = self._successors[state]
                if universal:
                    if successors and all(t in layers[k + 1] for t in successors):
                        satisfied.add(state)
                else:
                    if any(t in layers[k + 1] for t in successors):
                        satisfied.add(state)
                self.stats.fixpoint_work += 1
            layer = frozenset(satisfied)
            if warm_layers is not None:
                layer |= warm_layers[k] & unaffected
            layers[k] = layer
        self._formula_layers[key] = layers
        return layers[0]


def check(automaton: Automaton, formula: Formula) -> CheckResult:
    """One-shot convenience wrapper around :class:`ModelChecker`."""
    return ModelChecker(automaton).check(formula)
