"""CTL / ACTL / CCTL formula abstract syntax (§2.1 of the paper).

Properties are specified in clocked CTL (CCTL): standard CTL operators
plus discrete-time bounded variants such as ``AF_[1,d] p`` — "on every
path, ``p`` holds after at least 1 and at most ``d`` time units".  Since
every transition of the automaton model takes exactly one time unit
(§2), time bounds are simply step bounds.

Formulas are immutable trees.  Atoms are propositions (matched against
state labels) plus the special :class:`Deadlock` atom, which holds in
states without outgoing transitions — ``EF deadlock`` is the paper's
``M ⊨ δ`` and ``AG not deadlock`` its ``M ⊨ ¬δ``.

The ACTL subset (only universal path quantifiers, negation only applied
to atoms) is what Definition 5 calls *compositional* constraints; see
:mod:`repro.logic.compositional`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import FormulaError

__all__ = [
    "Formula",
    "Interval",
    "TrueF",
    "FalseF",
    "Prop",
    "Deadlock",
    "Not",
    "And",
    "Or",
    "Implies",
    "AX",
    "EX",
    "AF",
    "EF",
    "AG",
    "EG",
    "AU",
    "EU",
    "TRUE",
    "FALSE",
    "DEADLOCK",
    "DEADLOCK_FREE",
    "conjunction",
    "disjunction",
]


@dataclass(frozen=True, slots=True)
class Interval:
    """A discrete time window ``[low, high]`` in time units (steps)."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise FormulaError(f"invalid interval [{self.low},{self.high}]")

    def __str__(self) -> str:
        return f"[{self.low},{self.high}]"


class Formula:
    """Base class of all formula nodes."""

    __slots__ = ("_hash",)

    def children(self) -> tuple["Formula", ...]:
        return ()

    # ---------------------------------------------------------- conveniences

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def propositions(self) -> frozenset[str]:
        """``𝓛(φ)``: the atomic propositions occurring in the formula."""
        props: set[str] = set()
        for node in self.walk():
            if isinstance(node, Prop):
                props.add(node.name)
        return frozenset(props)

    def walk(self) -> Iterator["Formula"]:
        """All nodes of the formula tree, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def map_atoms(self, transform: Callable[["Formula", bool], "Formula"]) -> "Formula":
        """Rebuild the formula with atoms rewritten in negation-normal form.

        ``transform(atom, negated)`` receives each :class:`Prop` /
        :class:`Deadlock` / boolean-constant leaf together with its
        polarity and returns the replacement subformula.  Temporal
        operators and their intervals are preserved; ``Implies`` is
        expanded and ``Not`` is pushed down to the atoms, which is
        exactly the shape the §2.7 chaos weakening needs.
        """
        return _map_atoms(self, transform, negated=False)

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        # Formulas key the checker's memo tables, so the (recursive)
        # hash is computed once per node and cached.
        try:
            return self._hash
        except AttributeError:
            value = hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]
            self._hash = value
            return value

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return str(self)


class TrueF(Formula):
    __slots__ = ()

    def __str__(self) -> str:
        return "true"


class FalseF(Formula):
    __slots__ = ()

    def __str__(self) -> str:
        return "false"


class Prop(Formula):
    """An atomic proposition, satisfied when it appears in ``L(s)``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise FormulaError(f"proposition name must be a non-empty string, got {name!r}")
        self.name = name

    def _key(self) -> tuple:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


class Deadlock(Formula):
    """The special ``δ`` atom: true in states without outgoing transitions."""

    __slots__ = ()

    def __str__(self) -> str:
        return "deadlock"


class _Unary(Formula):
    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        if not isinstance(operand, Formula):
            raise FormulaError(f"expected a Formula, got {operand!r}")
        self.operand = operand

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def _key(self) -> tuple:
        return (self.operand,)


class Not(_Unary):
    __slots__ = ()

    def __str__(self) -> str:
        return f"(not {self.operand})"


class _Binary(Formula):
    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        for operand in (left, right):
            if not isinstance(operand, Formula):
                raise FormulaError(f"expected a Formula, got {operand!r}")
        self.left = left
        self.right = right

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def _key(self) -> tuple:
        return (self.left, self.right)


class And(_Binary):
    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


class Or(_Binary):
    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


class Implies(_Binary):
    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


class _Temporal(_Unary):
    """A unary temporal operator with an optional CCTL time window."""

    __slots__ = ("interval",)
    _symbol = "?"

    def __init__(self, operand: Formula, interval: Interval | None = None):
        super().__init__(operand)
        if interval is not None and not isinstance(interval, Interval):
            interval = Interval(*interval)
        self.interval = interval

    def _key(self) -> tuple:
        return (self.operand, self.interval)

    def __str__(self) -> str:
        window = str(self.interval) if self.interval is not None else ""
        return f"({self._symbol}{window} {self.operand})"


class AX(_Temporal):
    __slots__ = ()
    _symbol = "AX"

    def __init__(self, operand: Formula):
        super().__init__(operand, None)


class EX(_Temporal):
    __slots__ = ()
    _symbol = "EX"

    def __init__(self, operand: Formula):
        super().__init__(operand, None)


class AF(_Temporal):
    __slots__ = ()
    _symbol = "AF"


class EF(_Temporal):
    __slots__ = ()
    _symbol = "EF"


class AG(_Temporal):
    __slots__ = ()
    _symbol = "AG"


class EG(_Temporal):
    __slots__ = ()
    _symbol = "EG"


class _Until(Formula):
    """``A[φ U ψ]`` / ``E[φ U ψ]`` with an optional time window on U."""

    __slots__ = ("left", "right", "interval")
    _symbol = "?"

    def __init__(self, left: Formula, right: Formula, interval: Interval | None = None):
        for operand in (left, right):
            if not isinstance(operand, Formula):
                raise FormulaError(f"expected a Formula, got {operand!r}")
        if interval is not None and not isinstance(interval, Interval):
            interval = Interval(*interval)
        self.left = left
        self.right = right
        self.interval = interval

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def _key(self) -> tuple:
        return (self.left, self.right, self.interval)

    def __str__(self) -> str:
        window = str(self.interval) if self.interval is not None else ""
        return f"{self._symbol}[{self.left} U{window} {self.right}]"


class AU(_Until):
    __slots__ = ()
    _symbol = "A"


class EU(_Until):
    __slots__ = ()
    _symbol = "E"


TRUE = TrueF()
FALSE = FalseF()
DEADLOCK = Deadlock()
#: The paper's ``¬δ`` as a checkable formula: no reachable deadlock.
DEADLOCK_FREE = AG(Not(DEADLOCK))


def conjunction(formulas: "list[Formula] | tuple[Formula, ...]") -> Formula:
    """Right-nested conjunction of the given formulas (``true`` if empty)."""
    formulas = list(formulas)
    if not formulas:
        return TRUE
    result = formulas[-1]
    for formula in reversed(formulas[:-1]):
        result = And(formula, result)
    return result


def disjunction(formulas: "list[Formula] | tuple[Formula, ...]") -> Formula:
    """Right-nested disjunction of the given formulas (``false`` if empty)."""
    formulas = list(formulas)
    if not formulas:
        return FALSE
    result = formulas[-1]
    for formula in reversed(formulas[:-1]):
        result = Or(formula, result)
    return result


def _map_atoms(
    formula: Formula, transform: Callable[[Formula, bool], Formula], *, negated: bool
) -> Formula:
    if isinstance(formula, (Prop, Deadlock, TrueF, FalseF)):
        return transform(formula, negated)
    if isinstance(formula, Not):
        return _map_atoms(formula.operand, transform, negated=not negated)
    if isinstance(formula, Implies):
        expanded = Or(Not(formula.left), formula.right)
        return _map_atoms(expanded, transform, negated=negated)
    if isinstance(formula, And):
        combinator = Or if negated else And
        return combinator(
            _map_atoms(formula.left, transform, negated=negated),
            _map_atoms(formula.right, transform, negated=negated),
        )
    if isinstance(formula, Or):
        combinator = And if negated else Or
        return combinator(
            _map_atoms(formula.left, transform, negated=negated),
            _map_atoms(formula.right, transform, negated=negated),
        )
    duals: dict[type, type] = {AG: EF, EF: AG, AF: EG, EG: AF, AX: EX, EX: AX}
    if isinstance(formula, (AX, EX)):
        node_type = duals[type(formula)] if negated else type(formula)
        return node_type(_map_atoms(formula.operand, transform, negated=negated))
    if isinstance(formula, (AG, EF, AF, EG)):
        node_type = duals[type(formula)] if negated else type(formula)
        return node_type(
            _map_atoms(formula.operand, transform, negated=negated), formula.interval
        )
    if isinstance(formula, (AU, EU)):
        if negated:
            raise FormulaError(
                f"cannot push negation through {formula}: negated Until has no Until dual "
                "in this fragment; rewrite the formula without a negated U"
            )
        return type(formula)(
            _map_atoms(formula.left, transform, negated=False),
            _map_atoms(formula.right, transform, negated=False),
            formula.interval,
        )
    raise FormulaError(f"unknown formula node {formula!r}")
