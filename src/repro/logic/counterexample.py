"""Counterexample extraction for violated universal properties (§4.1).

The verification step of the iterative synthesis needs more than a
yes/no answer: a violated check must yield a *run* of the composed
automaton that witnesses the violation, because that run (projected
onto the legacy component) becomes the next test input (§4.2).

Supported formula shapes — exactly the compositional constraints the
paper works with (§2.4: invariants, upper/lower time bounds, ACTL):

* ``AG ψ`` with ``ψ`` a boolean combination of atoms: shortest run to a
  reachable state violating ``ψ`` (this covers the paper's pattern
  constraint ``A[] not(rear.convoy and front.noConvoy)`` and the
  deadlock check ``AG not deadlock``, whose witness ends *in* the
  deadlock state as in Listing 1.1);
* ``AG ψ`` where ``ψ`` contains bounded ``AF``/``AU`` obligations (the
  paper's maximal-delay constraints ``AG(¬p₁ ∨ AF_[1,d] p₂)``): the
  witness run reaches the trigger state and is extended along a path on
  which the obligation demonstrably fails;
* top-level ``AF``/``AF_[a,b]``/``AU``: a maximal (or window-exhausting)
  path avoiding the goal;
* conjunctions of the above: the first violated conjunct is explained.

The shortest-run policy implements the optimisation the paper's
conclusion asks for ("specific strategies in model checkers to derive
counterexamples (e.g., the shortest one)").
"""

from __future__ import annotations

from ..automata.analysis import shortest_run_to
from ..automata.automaton import Automaton, State
from ..automata.runs import Run
from ..errors import CounterexampleError
from .checker import ModelChecker
from .formulas import (
    AF,
    AG,
    AU,
    And,
    Deadlock,
    FalseF,
    Formula,
    Implies,
    Not,
    Or,
    Prop,
    TrueF,
)

__all__ = ["counterexample", "counterexamples", "deadlock_counterexample"]

_BOOLEAN_NODES = (Prop, Deadlock, TrueF, FalseF, Not, And, Or, Implies)


def _is_boolean(formula: Formula) -> bool:
    return isinstance(formula, _BOOLEAN_NODES) and all(
        _is_boolean(child) for child in formula.children()
    )


def deadlock_counterexample(automaton: Automaton) -> Run | None:
    """A shortest run into a reachable deadlock state (``M ⊨ δ`` witness)."""
    return shortest_run_to(automaton, automaton.is_deadlock)


def counterexample(
    automaton: Automaton, formula: Formula, *, checker: ModelChecker | None = None
) -> Run | None:
    """A witness run for ``M ⊭ φ``, or ``None`` when the property holds."""
    if checker is None:
        checker = ModelChecker(automaton)
    if checker.holds(formula):
        return None
    return _explain(checker, formula)


def counterexamples(
    automaton: Automaton,
    formula: Formula,
    *,
    checker: ModelChecker | None = None,
    limit: int = 1,
) -> list[Run]:
    """Up to ``limit`` distinct witness runs for ``M ⊭ φ``.

    The paper's conclusion names this as an optimisation of the
    verification/testing interplay: "the interplay between the formal
    verification and the test could be improved when a number of
    counterexample[s] instead only single one could be derived from the
    model checker."  For ``AG ψ`` (and its conjunctions) the witnesses
    are shortest runs to the ``limit`` nearest *distinct* violating
    states, in breadth-first order; other shapes fall back to the single
    witness.  Returns an empty list when the property holds.
    """
    if limit < 1:
        raise ValueError("limit must be positive")
    if checker is None:
        checker = ModelChecker(automaton)
    if checker.holds(formula):
        return []
    target = formula
    if isinstance(formula, And):
        for conjunct in (formula.left, formula.right):
            if not checker.holds(conjunct):
                target = conjunct
                break
    if not isinstance(target, AG):
        return [_explain(checker, target)]

    body_sat = checker.sat(target.operand)
    runs: list[Run] = []
    # Breadth-first search collecting shortest runs to distinct bad states.
    from collections import deque

    parents: dict = {}
    queue = deque()
    for state in sorted(automaton.initial, key=repr):
        parents[state] = None
        queue.append(state)
    bad_states: list = []
    while queue and len(bad_states) < limit:
        state = queue.popleft()
        if state not in body_sat:
            bad_states.append(state)
        for transition in automaton.transitions_from(state):
            if transition.target not in parents:
                parents[transition.target] = transition
                queue.append(transition.target)
    for bad in bad_states:
        chain = []
        cursor = bad
        while parents[cursor] is not None:
            transition = parents[cursor]
            chain.append(transition)
            cursor = transition.source
        chain.reverse()
        run = Run(cursor)
        for transition in chain:
            run = run.extend(transition.interaction, transition.target)
        runs.append(_extend_for_body(checker, run, target.operand))
    return runs


def _explain(checker: ModelChecker, formula: Formula) -> Run:
    automaton = checker.automaton
    if isinstance(formula, And):
        for conjunct in (formula.left, formula.right):
            if not checker.holds(conjunct):
                return _explain(checker, conjunct)
        raise AssertionError("conjunction violated but both conjuncts hold")
    if isinstance(formula, AG):
        body_sat = checker.sat(formula.operand)
        run = shortest_run_to(automaton, lambda s: s not in body_sat)
        if run is None:
            raise CounterexampleError(
                f"{formula} is violated but no reachable violating state was found"
            )
        return _extend_for_body(checker, run, formula.operand)
    if isinstance(formula, (AF, AU)) or _is_boolean(formula):
        starts = [q for q in automaton.initial if q not in checker.sat(formula)]
        if not starts:
            raise AssertionError(f"{formula} violated but every initial state satisfies it")
        start = sorted(starts, key=repr)[0]
        return _extend_for_body(checker, Run(start), formula)
    raise CounterexampleError(
        f"cannot extract a counterexample for {formula}: only AG/AF/AU shapes and their "
        "conjunctions are supported (the compositional fragment of §2.4)"
    )


def _extend_for_body(checker: ModelChecker, run: Run, body: Formula) -> Run:
    """Extend a run ending in a ``¬body`` state to demonstrate the failure.

    For purely boolean bodies the violating state itself is the
    demonstration.  For bodies containing a failed ``AF``/``AU``
    obligation, the run is extended along a path on which the obligation
    fails (bounded: until the window is exhausted or the path deadlocks;
    unbounded: until a cycle or deadlock is closed).
    """
    if _is_boolean(body):
        return run
    state = run.last_state
    if isinstance(body, (Or, Implies)):
        disjuncts = (
            (Not(body.left), body.right) if isinstance(body, Implies) else (body.left, body.right)
        )
        # Every disjunct is violated at the state; explain the first temporal one.
        for disjunct in disjuncts:
            if not _is_boolean(disjunct):
                return _extend_for_body(checker, run, disjunct)
        return run
    if isinstance(body, And):
        for conjunct in (body.left, body.right):
            if state not in checker.sat(conjunct):
                return _extend_for_body(checker, run, conjunct)
        raise AssertionError("conjunction violated at state but conjuncts hold")
    if isinstance(body, AF) and body.interval is not None:
        return _extend_bounded_af(checker, run, body)
    if isinstance(body, AF) and body.interval is None:
        return _extend_unbounded_af(checker, run, body)
    if isinstance(body, AU) and body.interval is None:
        return _extend_unbounded_au(checker, run, body)
    raise CounterexampleError(f"cannot demonstrate failure of {body} along a single path")


def _extend_bounded_af(checker: ModelChecker, run: Run, body: AF) -> Run:
    assert body.interval is not None
    operand = checker.sat(body.operand)
    layers = checker.bounded_layers("AF", operand, body.interval)
    state = run.last_state
    for k in range(body.interval.high):
        successors = checker.successors(state)
        if not successors:
            return run  # the path deadlocks before the obligation is met
        bad = [t for t in successors if t not in layers[k + 1]]
        if not bad:
            raise AssertionError(f"{body} fails at {state!r} but every successor satisfies layer {k + 1}")
        state = sorted(bad, key=repr)[0]
        run = run.extend(_interaction_to(checker.automaton, run.last_state, state), state)
    return run


def _extend_unbounded_af(checker: ModelChecker, run: Run, body: AF) -> Run:
    operand = checker.sat(body.operand)
    failing = checker.automaton.states - checker.sat(body)
    visited: set[State] = set()
    state = run.last_state
    while True:
        if state in visited:
            return run  # lasso closed: an infinite path avoiding the goal
        visited.add(state)
        successors = [t for t in checker.successors(state) if t in failing and t not in operand]
        if not successors:
            if not checker.successors(state):
                return run  # deadlocks without reaching the goal
            # All failing continuations satisfy the operand eventually;
            # the failure must be a deadlock reachable through ¬operand.
            candidates = [t for t in checker.successors(state) if t in failing]
            if not candidates:
                return run
            successors = candidates
        state = sorted(successors, key=repr)[0]
        run = run.extend(_interaction_to(checker.automaton, run.last_state, state), state)


def _extend_unbounded_au(checker: ModelChecker, run: Run, body: AU) -> Run:
    right = checker.sat(body.right)
    failing = checker.automaton.states - checker.sat(body)
    visited: set[State] = set()
    state = run.last_state
    while True:
        if state in visited or state in right:
            return run
        visited.add(state)
        successors = [t for t in checker.successors(state) if t in failing and t not in right]
        if not successors:
            return run
        state = sorted(successors, key=repr)[0]
        run = run.extend(_interaction_to(checker.automaton, run.last_state, state), state)


def _interaction_to(automaton: Automaton, source: State, target: State):
    for transition in automaton.transitions_from(source):
        if transition.target == target:
            return transition.interaction
    raise CounterexampleError(f"no transition from {source!r} to {target!r}")
