"""Workload generators for benchmarks and randomized soundness sweeps.

Three families:

* :func:`random_deterministic_component` — strongly deterministic
  machines over a given interface, seeded and reproducible; used by the
  randomized C1 (soundness) sweeps.
* :func:`mutate_component` — behavior-preserving-or-not mutations of an
  existing component (retarget, re-output, or delete a transition),
  modeling the "legacy component that fits more or less" the models
  (§1); determinism is preserved by construction.
* :func:`chain_server` / :func:`ping_client` — a protocol family whose
  *context-relevant* state count scales with a parameter, complementing
  the overbuilt shuttles (whose irrelevant part scales): this is the
  workload where the paper's approach legitimately has to learn more.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from .automata.automaton import Automaton, Transition
from .automata.interaction import Interaction
from .errors import ModelError
from .legacy.component import LegacyComponent

__all__ = [
    "random_deterministic_component",
    "mutate_component",
    "ping_client",
    "chain_server",
    "counter_client",
    "latency_server",
]


def random_deterministic_component(
    seed: int,
    *,
    n_states: int = 4,
    inputs: Iterable[str] = ("ping",),
    outputs: Iterable[str] = ("pong",),
    reaction_probability: float = 0.8,
    name: str = "random",
) -> LegacyComponent:
    """A seeded, strongly deterministic component over the interface.

    For every state and every singleton-or-empty input set, the machine
    reacts with probability ``reaction_probability`` — producing a
    singleton-or-empty output set and moving to a random state — and
    refuses otherwise.  All states are made reachable by wiring state
    ``i`` to appear as some target of states ``< i`` where possible.
    """
    if n_states < 1:
        raise ModelError("n_states must be positive")
    rng = random.Random(seed)
    inputs = sorted(inputs)
    outputs = sorted(outputs)
    input_sets = [frozenset()] + [frozenset({i}) for i in inputs]
    output_sets = [frozenset()] + [frozenset({o}) for o in outputs]
    states = [f"q{i}" for i in range(n_states)]
    transitions: list[Transition] = []
    # A spanning chain keeps every state reachable.
    for index in range(n_states - 1):
        chosen_inputs = rng.choice(input_sets)
        chosen_outputs = rng.choice(output_sets)
        transitions.append(
            Transition(states[index], Interaction(chosen_inputs, chosen_outputs), states[index + 1])
        )
    used = {(t.source, t.interaction.inputs) for t in transitions}
    for state in states:
        for input_set in input_sets:
            if (state, input_set) in used:
                continue
            if rng.random() > reaction_probability:
                continue
            interaction = Interaction(input_set, rng.choice(output_sets))
            target = rng.choice(states)
            transitions.append(Transition(state, interaction, target))
            used.add((state, input_set))
    hidden = Automaton(
        states=states,
        inputs=inputs,
        outputs=outputs,
        transitions=transitions,
        initial=[states[0]],
        name=f"{name}#{seed}",
    )
    return LegacyComponent(hidden, name=name)


def mutate_component(
    component: LegacyComponent, seed: int, *, mutations: int = 1, name: str | None = None
) -> LegacyComponent:
    """A copy of the component with random behavioral mutations.

    Each mutation either retargets a transition, changes its outputs,
    or deletes it; strong determinism is preserved (the ``(state,
    inputs)`` key never gains a second reaction).  Useful for soundness
    sweeps: some mutants stay correct, others break the protocol, and
    the synthesis verdict must track the ground truth either way.
    """
    rng = random.Random(seed)
    hidden = component._hidden
    # ordered_transitions, not the transitions frozenset: victim selection
    # must not depend on PYTHONHASHSEED for mutants to be reproducible.
    transitions = list(hidden.ordered_transitions)
    if not transitions:
        raise ModelError("cannot mutate a component without transitions")
    states = sorted(hidden.states, key=repr)
    output_sets = [frozenset()] + [frozenset({o}) for o in sorted(hidden.outputs)]
    for _ in range(mutations):
        index = rng.randrange(len(transitions))
        victim = transitions[index]
        operation = rng.choice(["retarget", "reoutput", "delete"])
        if operation == "delete" and len(transitions) > 1:
            transitions.pop(index)
        elif operation == "retarget":
            transitions[index] = Transition(
                victim.source, victim.interaction, rng.choice(states)
            )
        else:
            transitions[index] = Transition(
                victim.source,
                Interaction(victim.interaction.inputs, rng.choice(output_sets)),
                victim.target,
            )
    mutated = Automaton(
        states=hidden.states,
        inputs=hidden.inputs,
        outputs=hidden.outputs,
        transitions=transitions,
        initial=hidden.initial,
        labels=hidden.label_map,
        name=f"{hidden.name}~{seed}",
    )
    return LegacyComponent(mutated, name=name if name is not None else component.name)


def ping_client(*, name: str = "client") -> Automaton:
    """The canonical context: may idle, sends ping, awaits pong."""
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {f"{name}.idle"}, "waiting": {f"{name}.waiting"}},
        name=name,
    )


def counter_client(
    period: int,
    *,
    ping: str = "ping",
    pong: str = "pong",
    prefix: str = "client",
    name: str | None = None,
) -> Automaton:
    """A strictly periodic client: ping every ``period`` steps, await pong.

    Unlike :func:`ping_client` (which may idle nondeterministically) the
    counter client is deterministic, so its state count — ``period + 1``
    — scales the composed product directly: with ``period`` in the high
    hundreds a scenario's very first verify iteration crosses the
    dense-core boundary (:data:`repro.automata.interning.DENSE_STATE_FLOOR`).
    States are labeled ``{prefix}.idle`` / ``{prefix}.waiting`` so
    bounded-response properties read the same as for the plain client.
    """
    if period < 1:
        raise ModelError("period must be positive")
    width = len(str(period - 1))
    idle = [f"idle{index:0{width}d}" for index in range(period)]
    transitions = []
    for index in range(period - 1):
        transitions.append((idle[index], (), (), idle[index + 1]))
    transitions.append((idle[-1], (), (ping,), "waiting"))
    transitions.append(("waiting", (pong,), (), idle[0]))
    transitions.append(("waiting", (), (), "waiting"))
    labels = {state: {f"{prefix}.idle"} for state in idle}
    labels["waiting"] = {f"{prefix}.waiting"}
    return Automaton(
        inputs={pong},
        outputs={ping},
        transitions=transitions,
        initial=[idle[0]],
        labels=labels,
        name=name if name is not None else f"{prefix}(counter-{period})",
    )


def latency_server(
    latencies: "Iterable[int]",
    *,
    ping: str = "ping",
    pong: str = "pong",
    name: str = "server",
) -> LegacyComponent:
    """A server answering round ``i``'s ping after ``latencies[i]`` periods.

    Generalizes :func:`chain_server` (all latencies 1): the server cycles
    through the rounds; in round ``i`` it consumes a ping, waits
    ``latencies[i] - 1`` further periods, then emits the pong.  Bounded
    response ``AG (waiting -> AF[1,B] idle)`` against a ping client holds
    iff every latency is ``<= B`` — which is how the scenario factory
    plants property violations with a known answer: one slow round
    beyond the bound, reachable because the rounds cycle.
    """
    rounds = [int(latency) for latency in latencies]
    if not rounds:
        raise ModelError("need at least one round")
    if any(latency < 1 for latency in rounds):
        raise ModelError("latencies must be positive")
    transitions = []
    for index, latency in enumerate(rounds):
        ready = f"ready{index}"
        following = f"ready{(index + 1) % len(rounds)}"
        transitions.append((ready, (), (), ready))
        # Consume the ping now; emit the pong ``latency`` periods later
        # (latency 1 is exactly chain_server's ready -> busy -> ready).
        transitions.append((ready, (ping,), (), f"wait{index}.1"))
        for tick in range(1, latency):
            transitions.append((f"wait{index}.{tick}", (), (), f"wait{index}.{tick + 1}"))
        transitions.append((f"wait{index}.{latency}", (), (pong,), following))
    hidden = Automaton(
        inputs={ping},
        outputs={pong},
        transitions=transitions,
        initial=["ready0"],
        name=f"{name}(latency-{'-'.join(map(str, rounds))})",
    )
    return LegacyComponent(hidden, name=name)


def chain_server(length: int, *, name: str = "server") -> LegacyComponent:
    """A server whose *context-relevant* state count scales with length.

    The server cycles through ``length`` rounds; in each round it
    consumes a ping and answers with a pong one period later.  Every
    state is exercised by the ping client, so — unlike the overbuilt
    shuttles — the synthesis genuinely has to learn ``2·length`` states.
    """
    if length < 1:
        raise ModelError("length must be positive")
    transitions = []
    for index in range(length):
        ready, busy = f"ready{index}", f"busy{index}"
        transitions.append((ready, ("ping",), (), busy))
        transitions.append((ready, (), (), ready))
        transitions.append((busy, (), ("pong",), f"ready{(index + 1) % length}"))
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=transitions,
        initial=["ready0"],
        name=f"{name}(chain-{length})",
    )
    return LegacyComponent(hidden, name=name)
