"""Workload generators for benchmarks and randomized soundness sweeps.

Three families:

* :func:`random_deterministic_component` — strongly deterministic
  machines over a given interface, seeded and reproducible; used by the
  randomized C1 (soundness) sweeps.
* :func:`mutate_component` — behavior-preserving-or-not mutations of an
  existing component (retarget, re-output, or delete a transition),
  modeling the "legacy component that fits more or less" the models
  (§1); determinism is preserved by construction.
* :func:`chain_server` / :func:`ping_client` — a protocol family whose
  *context-relevant* state count scales with a parameter, complementing
  the overbuilt shuttles (whose irrelevant part scales): this is the
  workload where the paper's approach legitimately has to learn more.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from .automata.automaton import Automaton, Transition
from .automata.interaction import Interaction
from .errors import ModelError
from .legacy.component import LegacyComponent

__all__ = [
    "random_deterministic_component",
    "mutate_component",
    "ping_client",
    "chain_server",
]


def random_deterministic_component(
    seed: int,
    *,
    n_states: int = 4,
    inputs: Iterable[str] = ("ping",),
    outputs: Iterable[str] = ("pong",),
    reaction_probability: float = 0.8,
    name: str = "random",
) -> LegacyComponent:
    """A seeded, strongly deterministic component over the interface.

    For every state and every singleton-or-empty input set, the machine
    reacts with probability ``reaction_probability`` — producing a
    singleton-or-empty output set and moving to a random state — and
    refuses otherwise.  All states are made reachable by wiring state
    ``i`` to appear as some target of states ``< i`` where possible.
    """
    if n_states < 1:
        raise ModelError("n_states must be positive")
    rng = random.Random(seed)
    inputs = sorted(inputs)
    outputs = sorted(outputs)
    input_sets = [frozenset()] + [frozenset({i}) for i in inputs]
    output_sets = [frozenset()] + [frozenset({o}) for o in outputs]
    states = [f"q{i}" for i in range(n_states)]
    transitions: list[Transition] = []
    # A spanning chain keeps every state reachable.
    for index in range(n_states - 1):
        chosen_inputs = rng.choice(input_sets)
        chosen_outputs = rng.choice(output_sets)
        transitions.append(
            Transition(states[index], Interaction(chosen_inputs, chosen_outputs), states[index + 1])
        )
    used = {(t.source, t.interaction.inputs) for t in transitions}
    for state in states:
        for input_set in input_sets:
            if (state, input_set) in used:
                continue
            if rng.random() > reaction_probability:
                continue
            interaction = Interaction(input_set, rng.choice(output_sets))
            target = rng.choice(states)
            transitions.append(Transition(state, interaction, target))
            used.add((state, input_set))
    hidden = Automaton(
        states=states,
        inputs=inputs,
        outputs=outputs,
        transitions=transitions,
        initial=[states[0]],
        name=f"{name}#{seed}",
    )
    return LegacyComponent(hidden, name=name)


def mutate_component(
    component: LegacyComponent, seed: int, *, mutations: int = 1, name: str | None = None
) -> LegacyComponent:
    """A copy of the component with random behavioral mutations.

    Each mutation either retargets a transition, changes its outputs,
    or deletes it; strong determinism is preserved (the ``(state,
    inputs)`` key never gains a second reaction).  Useful for soundness
    sweeps: some mutants stay correct, others break the protocol, and
    the synthesis verdict must track the ground truth either way.
    """
    rng = random.Random(seed)
    hidden = component._hidden
    transitions = list(hidden.transitions)
    if not transitions:
        raise ModelError("cannot mutate a component without transitions")
    states = sorted(hidden.states, key=repr)
    output_sets = [frozenset()] + [frozenset({o}) for o in sorted(hidden.outputs)]
    for _ in range(mutations):
        index = rng.randrange(len(transitions))
        victim = transitions[index]
        operation = rng.choice(["retarget", "reoutput", "delete"])
        if operation == "delete" and len(transitions) > 1:
            transitions.pop(index)
        elif operation == "retarget":
            transitions[index] = Transition(
                victim.source, victim.interaction, rng.choice(states)
            )
        else:
            transitions[index] = Transition(
                victim.source,
                Interaction(victim.interaction.inputs, rng.choice(output_sets)),
                victim.target,
            )
    mutated = Automaton(
        states=hidden.states,
        inputs=hidden.inputs,
        outputs=hidden.outputs,
        transitions=transitions,
        initial=hidden.initial,
        labels=hidden.label_map,
        name=f"{hidden.name}~{seed}",
    )
    return LegacyComponent(mutated, name=name if name is not None else component.name)


def ping_client(*, name: str = "client") -> Automaton:
    """The canonical context: may idle, sends ping, awaits pong."""
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {f"{name}.idle"}, "waiting": {f"{name}.waiting"}},
        name=name,
    )


def chain_server(length: int, *, name: str = "server") -> LegacyComponent:
    """A server whose *context-relevant* state count scales with length.

    The server cycles through ``length`` rounds; in each round it
    consumes a ping and answers with a pong one period later.  Every
    state is exercised by the ping client, so — unlike the overbuilt
    shuttles — the synthesis genuinely has to learn ``2·length`` states.
    """
    if length < 1:
        raise ModelError("length must be positive")
    transitions = []
    for index in range(length):
        ready, busy = f"ready{index}", f"busy{index}"
        transitions.append((ready, ("ping",), (), busy))
        transitions.append((ready, (), (), ready))
        transitions.append((busy, (), ("pong",), f"ready{(index + 1) % length}"))
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=transitions,
        initial=["ready0"],
        name=f"{name}(chain-{length})",
    )
    return LegacyComponent(hidden, name=name)
