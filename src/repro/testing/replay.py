"""Deterministic replay: phase 2 of the paper's monitoring scheme (§5).

"In a first step, we (can) execute the system in the real environment
and monitor only the relevant information for deterministic replay
e.g., the incoming/outgoing messages and the period number … In a
second step, we reproduce the execution deterministically by the
recorded data of the first step.  We (can) add further instrumentation,
which have no effects on the execution, to get the information of the
relevant events for the behavior synthesize — especially the required
state information."

:func:`replay` re-executes a :class:`~repro.testing.executor.Recording`
offline (``live=False``), probing the component state around every
period, and returns the fully observed run — states included — that the
learning step (Definitions 11/12) merges into the behavioral model.
Replay verifies determinism as it goes: any difference between replayed
and recorded reactions raises :class:`~repro.errors.ReplayError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.interaction import Interaction
from ..automata.runs import Run
from ..errors import ReplayError
from ..legacy.component import Instrumentation, LegacyComponent
from .executor import Recording
from .monitor import MonitorEvent, events_for_run

__all__ = ["ReplayResult", "replay"]


@dataclass(frozen=True)
class ReplayResult:
    """The fully instrumented observation of a replayed execution."""

    component: str
    observed_run: Run
    probe_effect_free: bool
    port: str = "port"

    @property
    def blocked(self) -> bool:
        return self.observed_run.blocked is not None

    @property
    def events(self) -> tuple[MonitorEvent, ...]:
        """Full-instrumentation events for the observed run.

        Rendered lazily: the synthesis loop replays every recording but
        only reports ever read the listing text.
        """
        try:
            return self._events
        except AttributeError:
            events = tuple(events_for_run(self.observed_run, port=self.port))
            object.__setattr__(self, "_events", events)
            return events


def replay(component: LegacyComponent, recording: Recording, *, port: str = "port") -> ReplayResult:
    """Deterministically re-execute a recording with full instrumentation.

    Returns the observed run over the component's *real* state
    identifiers: regular steps for every period that reacted, and a
    blocked tail (Definition 2's deadlock-run shape) when the recorded
    execution ended in a refusal — carrying the outputs the original
    counterexample expected, which is what Definition 12 adds to ``T̄``.
    """
    if recording.component != component.name:
        raise ReplayError(
            f"recording belongs to {recording.component!r}, not {component.name!r}"
        )
    component.reset()
    try:
        with component.instrumented(Instrumentation.FULL, live=False):
            start = component.monitor_state()
            # Accumulate steps in a list and build the Run once: extending an
            # immutable Run per period would copy the prefix every time.
            steps: list[tuple[Interaction, object]] = []
            blocked_tail: Interaction | None = None
            for record in recording.steps:
                outcome = component.step(record.inputs)
                if outcome.blocked != record.blocked:
                    raise ReplayError(
                        f"replay diverged from recording at period {record.period}: "
                        f"recorded blocked={record.blocked}, replayed blocked={outcome.blocked} "
                        "— the component is not deterministic"
                    )
                if record.blocked:
                    blocked_tail = Interaction(record.inputs, record.expected_outputs)
                    break
                if outcome.outputs != record.observed_outputs:
                    raise ReplayError(
                        f"replay diverged from recording at period {record.period}: "
                        f"recorded outputs {sorted(record.observed_outputs)}, replayed "
                        f"{sorted(outcome.outputs)} — the component is not deterministic"
                    )
                steps.append((outcome.interaction, component.monitor_state()))
            run = Run(start, tuple(steps), blocked=blocked_tail)
            probe_free = not component.probe_effect_active
    finally:
        # A divergence (or injected replay fault) must not leave the
        # component mid-run for the next caller.
        component.reset()
    return ReplayResult(
        component=component.name,
        observed_run=run,
        probe_effect_free=probe_free,
        port=port,
    )
