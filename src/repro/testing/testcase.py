"""Deriving test cases from verification counterexamples (§5).

"The test case is directly derived from the counterexample": a
counterexample of the composed check ``M_a^c ∥ M_a^i ⊨ φ ∧ ¬δ`` is a
run of the composition; restricting it to the legacy component's
signals yields the period-by-period inputs to feed and outputs to
expect.  Idle periods are kept — they carry the timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.interaction import Interaction
from ..automata.runs import Run

__all__ = ["TestStep", "TestCase", "test_case_from_counterexample", "test_case_from_trace"]


@dataclass(frozen=True)
class TestStep:
    """One period of a test: inputs to offer, outputs to expect."""

    __test__ = False  # not a pytest class, despite the name

    inputs: frozenset[str]
    expected_outputs: frozenset[str]

    @property
    def interaction(self) -> Interaction:
        return Interaction(self.inputs, self.expected_outputs)


@dataclass(frozen=True)
class TestCase:
    """A finite test derived from a counterexample run."""

    __test__ = False  # not a pytest class, despite the name

    name: str
    steps: tuple[TestStep, ...]
    source_run: Run | None = None

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def trace(self) -> tuple[Interaction, ...]:
        return tuple(step.interaction for step in self.steps)


def test_case_from_trace(
    trace: "tuple[Interaction, ...] | list[Interaction]", *, name: str = "test"
) -> TestCase:
    """Package a plain interaction sequence as a test case."""
    steps = tuple(TestStep(i.inputs, i.outputs) for i in trace)
    return TestCase(name=name, steps=steps)


def test_case_from_counterexample(
    counterexample: Run,
    *,
    component_index: int,
    inputs: frozenset[str],
    outputs: frozenset[str],
    name: str = "counterexample-test",
) -> TestCase:
    """Project a composed counterexample onto the legacy component.

    ``component_index`` selects the legacy component's position within
    the composed (tuple) states; ``inputs``/``outputs`` are its signal
    sets.  The blocked tail of a deadlock counterexample becomes the
    final test step — the step whose refusal the test will try to
    confirm.
    """
    projected = counterexample.project(component_index, inputs, outputs)
    steps = [TestStep(i.inputs, i.outputs) for i, _ in projected.steps]
    if projected.blocked is not None:
        steps.append(TestStep(projected.blocked.inputs, projected.blocked.outputs))
    return TestCase(name=name, steps=tuple(steps), source_run=counterexample)
