"""Delta-debugging shrinker for failing conformance scenarios.

When the campaign (:mod:`tools.campaign <tools.campaign>`) finds a
scenario where some configuration of the synthesis loop — or a baseline
learner — disagrees with full-composition ground truth, the raw witness
is usually too large to read: hundreds of driver states, several slots,
chaff padding.  :func:`shrink_scenario` minimizes it with classic ddmin
(Zeller & Hildebrandt) over three nested granularities:

1. **slots** — drop whole legacy slots (and the joint flag) while the
   failure persists;
2. **hidden transitions** — per slot, remove transitions of the hidden
   component;
3. **client transitions** — per slot, remove transitions of the driver.

A candidate spec that no longer *builds* (the reduced automaton loses
determinism, its initial state, or interface consistency) simply counts
as non-failing, so the shrinker never needs domain knowledge about
which reductions are structurally legal.

The predicate is explicit: callers describe the disagreement they are
chasing as ``failing(spec) -> bool``.  :func:`disagreement_predicate`
builds the standard one (any matrix/baseline disagreement against
freshly derived ground truth — deliberately ignoring the spec's *stored*
expectation, which shrinking invalidates).  The shrunk spec is
re-certified before it is returned: every slot expectation and the
overall expectation are re-stamped from full-composition model checking,
so committed fixtures always carry a true known answer.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import replace

from ..errors import ModelError, SynthesisError
from ..logic.parser import parse
from .scenario import (
    PROVEN,
    VIOLATION,
    CampaignConfig,
    ScenarioSpec,
    SlotSpec,
    _slot_truth,
    build_scenario,
    evaluate_scenario,
)

__all__ = ["ddmin", "disagreement_predicate", "shrink_scenario"]


def ddmin(items: Sequence, fails: Callable[[list], bool]) -> list:
    """Zeller's ddmin: a minimal failing sublist of ``items``.

    ``fails`` receives candidate sublists (in original order) and must
    be deterministic.  The full list is assumed failing; the result is
    1-minimal — removing any single element makes the failure vanish.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        subsets = [items[at : at + chunk] for at in range(0, len(items), chunk)]
        reduced = False
        for index, subset in enumerate(subsets):
            complement = [
                item
                for other, subset_ in enumerate(subsets)
                if other != index
                for item in subset_
            ]
            if complement and fails(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if fails(subset):
                items = subset
                granularity = 2
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def disagreement_predicate(
    configs: "tuple[CampaignConfig, ...] | None" = None,
    *,
    with_baselines: bool = False,
) -> Callable[[ScenarioSpec], bool]:
    """The standard failure predicate: any matrix/baseline disagreement.

    Ground truth is derived fresh for every candidate (the candidate's
    stored expectations are stale mid-shrink and are ignored); a
    candidate that cannot be built or run counts as non-failing.
    """

    def failing(spec: ScenarioSpec) -> bool:
        try:
            evaluation = evaluate_scenario(
                build_scenario(spec), configs, with_baselines=with_baselines
            )
        except (ModelError, SynthesisError):
            return False
        real = [
            entry
            for entry in evaluation.disagreements
            if not entry.startswith("spec expectation")
        ]
        return bool(real)

    return failing


def _with_transitions(payload: dict, transitions: list) -> dict:
    """A copy of a serialized automaton with a reduced transition list.

    States that no longer appear in any transition (and are not
    initial) are pruned alongside, so the shrunk fixture does not carry
    orphan states; labels follow the surviving states.
    """
    used = set(payload["initial"])
    for source, _interaction, target in transitions:
        used.add(source)
        used.add(target)
    return {
        "name": payload["name"],
        "inputs": payload["inputs"],
        "outputs": payload["outputs"],
        "states": [state for state in payload["states"] if state in used],
        "initial": payload["initial"],
        "transitions": transitions,
        "labels": {
            state: props
            for state, props in payload.get("labels", {}).items()
            if state in used
        },
    }


def _restamp(spec: ScenarioSpec) -> ScenarioSpec:
    """Re-certify expectations by full-composition model checking."""
    scenario = build_scenario(spec)
    slots = tuple(
        replace(
            slot,
            expectation=_slot_truth(
                scenario.contexts[slot.name],
                scenario.hiddens[slot.name],
                parse(slot.property),
            ),
        )
        for slot in spec.slots
    )
    overall = (
        PROVEN if all(slot.expectation == PROVEN for slot in slots) else VIOLATION
    )
    return replace(spec, slots=slots, expectation=overall)


def shrink_scenario(
    spec: ScenarioSpec,
    failing: Callable[[ScenarioSpec], bool],
    *,
    max_passes: int = 4,
) -> ScenarioSpec:
    """Minimize a failing scenario spec while ``failing`` stays true.

    Alternates slot-level and transition-level ddmin until a whole pass
    makes no progress (or ``max_passes`` is hit), then re-stamps the
    known answer.  Raises :class:`ModelError` if ``spec`` itself is not
    failing — shrinking a passing scenario indicates a harness bug.
    """
    if not failing(spec):
        raise ModelError(f"scenario {spec.name!r} is not failing; nothing to shrink")

    def guarded(candidate: ScenarioSpec) -> bool:
        try:
            build_scenario(candidate)
        except (ModelError, SynthesisError):
            return False
        return failing(candidate)

    current = spec
    for _ in range(max_passes):
        before = current

        # Pass 1: fewer slots (renaming is deliberately left alone so the
        # surviving slot keeps its original identity in the fixture).
        if len(current.slots) > 1:
            kept = ddmin(
                list(current.slots),
                lambda slots: guarded(replace(current, slots=tuple(slots))),
            )
            current = replace(current, slots=tuple(kept))
        if current.joint:
            flat = replace(current, joint=False)
            if guarded(flat):
                current = flat

        # Pass 2 + 3: per slot, fewer hidden then fewer client transitions.
        for index, slot in enumerate(current.slots):
            for field in ("hidden", "client"):
                payload = getattr(slot, field)

                def rebuilt(transitions: list) -> ScenarioSpec:
                    reduced = replace(
                        slot, **{field: _with_transitions(payload, transitions)}
                    )
                    slots = list(current.slots)
                    slots[index] = reduced
                    return replace(current, slots=tuple(slots))

                kept = ddmin(
                    list(payload["transitions"]),
                    lambda transitions: guarded(rebuilt(transitions)),
                )
                if len(kept) < len(payload["transitions"]):
                    current = rebuilt(kept)
                    slot = current.slots[index]

        if current == before:
            break

    return _restamp(current)
