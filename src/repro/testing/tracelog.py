"""Parsing monitored event listings back into events and runs.

The monitor renders executions in the paper's listing format
(``[Message] name="…", portName="…", type="outgoing"`` etc.).  Real
integration projects have such logs *before* they have Python objects —
recorded by the target's own tracing infrastructure.  This module
parses the listing format back into events and reconstructs observed
runs, so field logs can seed the learner directly
(:func:`repro.synthesis.learn_regular` accepts the result).

The grammar is exactly what :func:`repro.testing.render_events` emits;
round-tripping is property-tested.
"""

from __future__ import annotations

import re

from ..automata.interaction import Interaction
from ..automata.runs import Run
from ..errors import ModelError
from .monitor import MessageEvent, MonitorEvent, StateEvent, TimingEvent

__all__ = ["parse_events", "run_from_events"]

_MESSAGE_RE = re.compile(
    r'\[Message\]\s+name="(?P<name>[^"]+)",\s+portName="(?P<port>[^"]+)",\s+'
    r'type="(?P<direction>incoming|outgoing)"'
)
_STATE_RE = re.compile(r'\[CurrentState\]\s+name="(?P<name>[^"]+)"')
_TIMING_RE = re.compile(r"\[Timing\]\s+count=(?P<count>\d+)")


def parse_events(text: str) -> list[MonitorEvent]:
    """Parse a listing (one event per line) into monitor events.

    Periods of message events are inferred from the surrounding
    ``[Timing]`` records when present (the count *after* a message is
    its period), otherwise they default to 0.
    """
    events: list[MonitorEvent] = []
    pending_messages: list[int] = []
    period = 0
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        match = _MESSAGE_RE.fullmatch(line)
        if match:
            events.append(
                MessageEvent(match["name"], match["port"], match["direction"], period + 1)
            )
            pending_messages.append(len(events) - 1)
            continue
        match = _STATE_RE.fullmatch(line)
        if match:
            events.append(StateEvent(match["name"], period))
            continue
        match = _TIMING_RE.fullmatch(line)
        if match:
            period = int(match["count"])
            events.append(TimingEvent(period))
            for index in pending_messages:
                event = events[index]
                events[index] = MessageEvent(event.name, event.port, event.direction, period)
            pending_messages.clear()
            continue
        raise ModelError(f"line {line_number} is not a monitor event: {raw_line!r}")
    return events


def run_from_events(events: "list[MonitorEvent] | tuple[MonitorEvent, ...]") -> Run:
    """Reconstruct an observed run from a fully instrumented listing.

    Expects the ``events_for_run`` shape: states interleaved with the
    messages of each step.  Messages between two state observations form
    that step's interaction (``incoming`` → inputs, ``outgoing`` →
    outputs); messages after the final state form a blocked tail.
    """
    states = [event for event in events if isinstance(event, StateEvent)]
    if not states:
        raise ModelError("cannot reconstruct a run without state observations")

    run = Run(states[0].name)
    inputs: set[str] = set()
    outputs: set[str] = set()
    start_seen = False
    for event in events:
        if isinstance(event, StateEvent):
            if not start_seen:
                start_seen = True
                continue
            run = run.extend(Interaction(inputs, outputs), event.name)
            inputs, outputs = set(), set()
        elif isinstance(event, MessageEvent):
            if event.direction == "incoming":
                inputs.add(event.name)
            else:
                outputs.add(event.name)
    if inputs or outputs:
        run = run.block(Interaction(inputs, outputs))
    return run
