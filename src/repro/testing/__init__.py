"""Counterexample-based testing with deterministic replay (§5).

Counterexamples become test cases; test cases are executed against the
live component under minimal instrumentation; recordings are replayed
offline under full instrumentation to obtain state-annotated runs for
the learning step.
"""

from .executor import RecordedStep, Recording, TestExecution, TestVerdict, execute_test
from .faults import FaultKind, FaultProfile, FaultyComponent
from .monitor import (
    MessageEvent,
    MonitorEvent,
    StateEvent,
    TimingEvent,
    events_for_run,
    message_events,
    render_events,
)
from .replay import ReplayResult, replay
from .robust import Quarantine, RetryPolicy, RobustExecution, RobustExecutor
from .scenario import (
    LARGE_EVERY,
    CampaignConfig,
    ConfigOutcome,
    Scenario,
    ScenarioEvaluation,
    ScenarioSpec,
    SlotSpec,
    baseline_verdicts,
    build_scenario,
    default_matrix,
    evaluate_scenario,
    full_matrix,
    generate_scenario,
    ground_truth,
    run_scenario,
    spec_fingerprint,
)
from .shrink import ddmin, disagreement_predicate, shrink_scenario
from .suite import Coverage, SuiteReport, generate_suite, run_suite
from .tracelog import parse_events, run_from_events
from .testcase import TestCase, TestStep, test_case_from_counterexample, test_case_from_trace

__all__ = [
    "TestCase",
    "TestStep",
    "test_case_from_counterexample",
    "test_case_from_trace",
    "TestVerdict",
    "TestExecution",
    "Recording",
    "RecordedStep",
    "execute_test",
    "ReplayResult",
    "replay",
    "FaultKind",
    "FaultProfile",
    "FaultyComponent",
    "RetryPolicy",
    "RobustExecutor",
    "RobustExecution",
    "Quarantine",
    "generate_suite",
    "run_suite",
    "SuiteReport",
    "Coverage",
    "MessageEvent",
    "StateEvent",
    "TimingEvent",
    "MonitorEvent",
    "message_events",
    "events_for_run",
    "render_events",
    "parse_events",
    "run_from_events",
    "ScenarioSpec",
    "SlotSpec",
    "Scenario",
    "CampaignConfig",
    "ConfigOutcome",
    "ScenarioEvaluation",
    "build_scenario",
    "generate_scenario",
    "ground_truth",
    "run_scenario",
    "default_matrix",
    "full_matrix",
    "evaluate_scenario",
    "baseline_verdicts",
    "spec_fingerprint",
    "LARGE_EVERY",
    "ddmin",
    "disagreement_predicate",
    "shrink_scenario",
]
