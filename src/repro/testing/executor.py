"""Test execution against the live legacy component (§4.2, §5 phase 1).

The executor drives the component period by period with the test case's
inputs under **minimal** instrumentation (messages and periods only —
state probes would suffer the probe effect live).  It produces:

* a verdict — ``CONFIRMED`` (every period reacted exactly as the
  counterexample predicted: a *real* integration error, Lemma 6),
  ``DIVERGED`` (some period produced different outputs), or ``BLOCKED``
  (some period had no reaction at all);
* the recording needed for the deterministic replay phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..automata.interaction import Interaction
from ..legacy.component import Instrumentation, LegacyComponent
from .monitor import MessageEvent, message_events
from .testcase import TestCase, TestStep

__all__ = ["TestVerdict", "RecordedStep", "Recording", "TestExecution", "execute_test"]


class TestVerdict(Enum):
    __test__ = False  # not a pytest class, despite the name

    CONFIRMED = "confirmed"
    DIVERGED = "diverged"
    BLOCKED = "blocked"
    #: The execution could not be completed fault-free within its retry
    #: budget (see :mod:`repro.testing.robust`).  Never produced by
    #: :func:`execute_test` itself; never merged into the model and never
    #: reported as a real integration error — Lemma 6 requires a
    #: validated fault-free run for CONFIRMED.
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class RecordedStep:
    """Minimal per-period record: what was fed and what was observed."""

    period: int
    inputs: frozenset[str]
    observed_outputs: frozenset[str]
    expected_outputs: frozenset[str]
    blocked: bool


@dataclass(frozen=True)
class Recording:
    """The minimal-event recording of one test execution.

    Contains everything deterministic replay needs: the exact input
    feed (with period numbers) and the observed reactions.
    """

    component: str
    steps: tuple[RecordedStep, ...]

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class TestExecution:
    """Outcome of executing one test case."""

    __test__ = False  # not a pytest class, despite the name

    testcase: TestCase
    verdict: TestVerdict
    divergence_index: int | None
    recording: Recording
    port: str = "port"

    @property
    def confirmed(self) -> bool:
        return self.verdict is TestVerdict.CONFIRMED

    @property
    def events(self) -> tuple[MessageEvent, ...]:
        """Minimal events reflecting what was observed at the ports.

        Rendered lazily: the synthesis loop executes thousands of tests
        but only reports ever read the listing text.
        """
        try:
            return self._events
        except AttributeError:
            actual_trace = tuple(
                Interaction(record.inputs, record.observed_outputs)
                for record in self.recording.steps
            )
            events = tuple(message_events(actual_trace, port=self.port))
            object.__setattr__(self, "_events", events)
            return events


def _observed_step(period: int, step: TestStep, outputs: frozenset[str], blocked: bool) -> RecordedStep:
    return RecordedStep(
        period=period,
        inputs=step.inputs,
        observed_outputs=outputs,
        expected_outputs=step.expected_outputs,
        blocked=blocked,
    )


def execute_test(component: LegacyComponent, testcase: TestCase, *, port: str = "port") -> TestExecution:
    """Run a test case against the component from its initial state.

    Execution stops at the first divergence or blocking — the remainder
    of the counterexample is meaningless once the real component has
    left the predicted path.
    """
    component.reset()
    recorded: list[RecordedStep] = []
    verdict = TestVerdict.CONFIRMED
    divergence_index: int | None = None
    try:
        with component.instrumented(Instrumentation.MINIMAL, live=True):
            for index, step in enumerate(testcase.steps):
                outcome = component.step(step.inputs)
                if outcome.blocked:
                    recorded.append(_observed_step(outcome.period, step, frozenset(), blocked=True))
                    verdict = TestVerdict.BLOCKED
                    divergence_index = index
                    break
                recorded.append(_observed_step(outcome.period, step, outcome.outputs, blocked=False))
                if outcome.outputs != step.expected_outputs:
                    verdict = TestVerdict.DIVERGED
                    divergence_index = index
                    break
    finally:
        # A step that raises (unknown port, injected fault, timeout)
        # must not leave the component mid-run for the next caller.
        component.reset()
    recording = Recording(component=component.name, steps=tuple(recorded))
    return TestExecution(
        testcase=testcase,
        verdict=verdict,
        divergence_index=divergence_index,
        recording=recording,
        port=port,
    )
