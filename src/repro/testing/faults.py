"""Deterministic, seed-driven fault injection for the testing subsystem.

The paper's record/replay scheme (§4.2, §5) exists precisely because
live execution of a real component is unreliable: probes cost time,
processes crash, messages get lost.  This module models that
unreliability *reproducibly* so the robust executor
(:mod:`repro.testing.robust`) and the synthesis loop's degraded-verdict
handling can be exercised — and any CI failure replayed bit-for-bit
from its seed.

Fault taxonomy (:class:`FaultKind`):

``TRANSIENT_ERROR``
    A live step raises :class:`~repro.errors.FaultInjectionError`
    before executing — the harness lost contact for one period.
``CRASH_RESET``
    The component crashes and restarts: its hidden state is lost (it is
    reset to the initial state) and the step raises
    :class:`~repro.errors.FaultInjectionError`.
``HANG``
    A live step stalls for :attr:`FaultProfile.hang_seconds` before
    reacting; a per-step deadline (see
    :class:`~repro.testing.robust.RetryPolicy`) converts the stall into
    :class:`~repro.errors.TestTimeoutError`.
``DROPPED_OUTPUT``
    One output message of a live reaction is lost before the monitor
    sees it — the recording is silently corrupted.
``SPURIOUS_OUTPUT``
    A spurious output message is observed that the component never
    produced — the recording is silently corrupted.
``REPLAY_FLIP``
    Offline replay nondeterminism: one replayed output is flipped, so
    :func:`repro.testing.replay.replay` raises
    :class:`~repro.errors.ReplayError` on a perfectly good recording.

Determinism: each armed step consumes a *fixed* number of RNG draws
(one per live fault kind, or one for the replay kind), in a fixed
order, from a ``random.Random(profile.seed)`` private to the wrapper.
Two runs with the same seed and the same step sequence therefore
inject exactly the same faults — the whole chaos CI matrix is
replayable.

Faults fire only while the wrapper is *armed* (inside
:meth:`FaultyComponent.inject_faults`, entered by the robust executor
around supervised executions and validation replays).  Unsupervised
uses — warm-start knowledge validation, baselines, direct harness
calls — see the wrapped component's exact behavior, so fault recovery
always happens under the one layer that can recover.
"""

from __future__ import annotations

import os
import random
import time
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from enum import Enum

from ..errors import FaultInjectionError, ModelError
from ..legacy.component import LegacyComponent, StepOutcome

__all__ = [
    "FAULT_SEED_ENV",
    "FaultKind",
    "FaultProfile",
    "FaultyComponent",
]

#: Environment variable activating the mild fault profile suite-wide:
#: ``REPRO_FAULT_SEED=2`` wraps every synthesizer's component in a
#: :class:`FaultyComponent` seeded with 2 (used by the chaos CI job).
FAULT_SEED_ENV = "REPRO_FAULT_SEED"


class FaultKind(Enum):
    """The injectable failure modes of the harness."""

    TRANSIENT_ERROR = "transient_error"
    CRASH_RESET = "crash_reset"
    HANG = "hang"
    DROPPED_OUTPUT = "dropped_output"
    SPURIOUS_OUTPUT = "spurious_output"
    REPLAY_FLIP = "replay_flip"


#: Draw order of the live fault kinds — fixed so every armed live step
#: consumes exactly ``len(_LIVE_KINDS)`` RNG draws regardless of which
#: fault (if any) fires.
_LIVE_KINDS = (
    FaultKind.TRANSIENT_ERROR,
    FaultKind.CRASH_RESET,
    FaultKind.HANG,
    FaultKind.DROPPED_OUTPUT,
    FaultKind.SPURIOUS_OUTPUT,
)

_RATE_FIELDS = {
    FaultKind.TRANSIENT_ERROR: "transient_error_rate",
    FaultKind.CRASH_RESET: "crash_reset_rate",
    FaultKind.HANG: "hang_rate",
    FaultKind.DROPPED_OUTPUT: "dropped_output_rate",
    FaultKind.SPURIOUS_OUTPUT: "spurious_output_rate",
    FaultKind.REPLAY_FLIP: "replay_flip_rate",
}


@dataclass(frozen=True)
class FaultProfile:
    """Per-step fault probabilities, fully determined by ``seed``.

    All rates are probabilities in ``[0, 1]`` applied independently per
    executed period (live kinds) or per replayed period
    (``replay_flip_rate``).  A profile with every rate at zero is
    *inactive*: the wrapper is then a transparent proxy.
    """

    seed: int = 0
    transient_error_rate: float = 0.0
    crash_reset_rate: float = 0.0
    hang_rate: float = 0.0
    dropped_output_rate: float = 0.0
    spurious_output_rate: float = 0.0
    replay_flip_rate: float = 0.0
    #: How long an injected hang stalls a live step (seconds).  Kept
    #: small so chaos suites stay fast; pair with
    #: ``RetryPolicy.step_timeout`` below it to surface timeouts.
    hang_seconds: float = 0.005

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ModelError(f"fault seed must be an integer, got {self.seed!r}")
        for field_info in fields(self):
            if not field_info.name.endswith("_rate"):
                continue
            value = getattr(self, field_info.name)
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ModelError(
                    f"{field_info.name} must be a probability in [0, 1], got {value!r}"
                )
        if self.hang_seconds < 0:
            raise ModelError(f"hang_seconds must be non-negative, got {self.hang_seconds!r}")

    # ---------------------------------------------------------- constructors

    @classmethod
    def mild(cls, seed: int = 0) -> "FaultProfile":
        """Low per-step rates: occasional retries, no lost verdicts.

        This is the profile behind :data:`FAULT_SEED_ENV` — gentle
        enough that a bounded retry budget recovers every execution, so
        final verdicts stay bit-identical to the fault-free run.
        """
        return cls(
            seed=seed,
            transient_error_rate=0.01,
            crash_reset_rate=0.004,
            hang_rate=0.0,
            dropped_output_rate=0.004,
            spurious_output_rate=0.004,
            replay_flip_rate=0.006,
        )

    @classmethod
    def hostile(cls, seed: int = 0) -> "FaultProfile":
        """High rates for exercising quarantine/INCONCLUSIVE paths."""
        return cls(
            seed=seed,
            transient_error_rate=0.25,
            crash_reset_rate=0.1,
            hang_rate=0.0,
            dropped_output_rate=0.15,
            spurious_output_rate=0.15,
            replay_flip_rate=0.2,
        )

    @classmethod
    def single(cls, kind: FaultKind, rate: float, *, seed: int = 0) -> "FaultProfile":
        """A profile injecting exactly one fault kind (for matrix tests)."""
        return replace(cls(seed=seed), **{_RATE_FIELDS[kind]: rate})

    @classmethod
    def from_env(cls) -> "FaultProfile | None":
        """The mild profile seeded from :data:`FAULT_SEED_ENV`, or ``None``."""
        raw = os.environ.get(FAULT_SEED_ENV, "").strip()
        if not raw:
            return None
        try:
            seed = int(raw)
        except ValueError:
            raise ModelError(
                f"{FAULT_SEED_ENV} must be an integer seed, got {raw!r}"
            ) from None
        return cls.mild(seed)

    # ------------------------------------------------------------------ wire

    def as_wire(self) -> dict:
        """A JSON-safe dict shipping the profile to a component host.

        Every field is a scalar, so the representation is lossless and
        the host-side schedule (rebuilt via :meth:`from_wire` with the
        same seed) consumes RNG draws bit-identically to an in-process
        :class:`FaultyComponent` — crash-resets and hangs injected
        *inside* the subprocess stay seed-reproducible across the wire.
        """
        return {field_info.name: getattr(self, field_info.name) for field_info in fields(self)}

    @classmethod
    def from_wire(cls, payload: dict) -> "FaultProfile":
        """Rebuild a profile from :meth:`as_wire` output (validating)."""
        if not isinstance(payload, dict):
            raise ModelError(f"fault profile payload must be a dict, got {type(payload).__name__}")
        known = {field_info.name for field_info in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ModelError(f"unknown fault profile fields {sorted(unknown)}")
        return cls(**payload)

    # ------------------------------------------------------------- inspection

    def rate_of(self, kind: FaultKind) -> float:
        return getattr(self, _RATE_FIELDS[kind])

    @property
    def active(self) -> bool:
        """Does any fault kind have a nonzero probability?"""
        return any(self.rate_of(kind) > 0.0 for kind in FaultKind)


class FaultyComponent:
    """A fault-injecting wrapper around a :class:`LegacyComponent`.

    Delegates every attribute to the wrapped component — counters
    (``steps_executed``, ``resets``, ``state_probes``), instrumentation
    scopes, and the structural interface all accrue on the *inner*
    component, so existing black-box-discipline assertions keep
    working.  Only :meth:`step` is intercepted, and only while armed
    (inside :meth:`inject_faults`).

    Parameters
    ----------
    inner:
        The component to wrap (an :class:`~repro.automata.automaton.Automaton`
        is accepted and wrapped in a fresh :class:`LegacyComponent`).
    profile:
        The frozen fault probabilities; the private RNG is seeded from
        ``profile.seed`` at construction and on :meth:`reseed`.
    tracer:
        Optional :class:`repro.obs.Tracer`; every fired fault emits a
        ``fault.inject`` span carrying the fault kind.
    """

    def __init__(self, inner, profile: FaultProfile, *, tracer=None):
        if not isinstance(profile, FaultProfile):
            raise ModelError(f"profile must be a FaultProfile, got {type(profile).__name__}")
        if not hasattr(inner, "step"):
            inner = LegacyComponent(inner)
        object.__setattr__(self, "_inner", inner)
        self.profile = profile
        self._rng = random.Random(profile.seed)
        self._armed = 0
        self._sleep = time.sleep
        self.fault_counts: dict[str, int] = {kind.value: 0 for kind in FaultKind}
        from ..obs.tracer import resolve_tracer

        self._tracer = resolve_tracer(tracer)

    @classmethod
    def wrap(cls, component, profile: FaultProfile, *, tracer=None) -> "FaultyComponent":
        """Wrap ``component`` (idempotent on an already-faulty one)."""
        if isinstance(component, FaultyComponent):
            return component
        return cls(component, profile, tracer=tracer)

    # ------------------------------------------------------------ delegation

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __setattr__(self, name: str, value) -> None:
        # The wrapper owns its own small state; everything else (e.g. a
        # test poking ``component.resets = 0``) reaches the inner one.
        if name in (
            "profile",
            "_rng",
            "_armed",
            "_sleep",
            "_tracer",
            "fault_counts",
        ):
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)

    def __repr__(self) -> str:
        return f"FaultyComponent({self._inner!r}, seed={self.profile.seed})"

    @property
    def inner(self) -> LegacyComponent:
        """The wrapped component (for assertions on its counters)."""
        return self._inner

    # --------------------------------------------------------------- arming

    @contextmanager
    def inject_faults(self):
        """Arm fault injection for the duration of the scope.

        Entered by :class:`~repro.testing.robust.RobustExecutor` around
        every supervised execution and validation replay.  Unarmed, the
        wrapper is transparent — knowledge validation, probing helpers,
        and direct callers never see injected faults.
        """
        self._armed += 1
        try:
            yield self
        finally:
            self._armed -= 1

    @property
    def fault_injection_active(self) -> bool:
        """Would an armed scope actually inject anything?"""
        return self.profile.active

    @property
    def faults_injected(self) -> int:
        """Total faults fired so far (all kinds)."""
        return sum(self.fault_counts.values())

    def reseed(self, seed: int | None = None) -> None:
        """Restart the fault schedule (defaults to the profile's seed)."""
        self._rng.seed(self.profile.seed if seed is None else seed)

    # ------------------------------------------------------------- execution

    def _fire(self, kind: FaultKind) -> None:
        self.fault_counts[kind.value] += 1
        with self._tracer.span("fault.inject", kind=kind.value):
            pass

    def step(self, inputs: Iterable[str] = ()) -> StepOutcome:
        inner = self._inner
        if not self._armed or not self.profile.active:
            return inner.step(inputs)
        profile = self.profile
        rng = self._rng
        if inner._live:
            # Fixed draw schedule: one draw per live kind, always.
            draws = {kind: rng.random() for kind in _LIVE_KINDS}
            if draws[FaultKind.TRANSIENT_ERROR] < profile.transient_error_rate:
                self._fire(FaultKind.TRANSIENT_ERROR)
                raise FaultInjectionError(
                    f"injected transient error on {inner.name!r} "
                    f"at period {inner._period}"
                )
            if draws[FaultKind.CRASH_RESET] < profile.crash_reset_rate:
                self._fire(FaultKind.CRASH_RESET)
                inner.reset()  # the crash loses the component state
                raise FaultInjectionError(
                    f"injected crash on {inner.name!r}: component restarted "
                    "in its initial state"
                )
            if draws[FaultKind.HANG] < profile.hang_rate and profile.hang_seconds > 0:
                self._fire(FaultKind.HANG)
                self._sleep(profile.hang_seconds)
            outcome = inner.step(inputs)
            if outcome.blocked:
                return outcome
            outputs = outcome.outputs
            if draws[FaultKind.DROPPED_OUTPUT] < profile.dropped_output_rate and outputs:
                self._fire(FaultKind.DROPPED_OUTPUT)
                dropped = sorted(outputs)[rng.randrange(len(outputs))]
                outputs = outputs - {dropped}
            if draws[FaultKind.SPURIOUS_OUTPUT] < profile.spurious_output_rate:
                available = sorted(inner.outputs - outputs)
                if available:
                    self._fire(FaultKind.SPURIOUS_OUTPUT)
                    outputs = outputs | {available[rng.randrange(len(available))]}
            if outputs is not outcome.outputs:
                return StepOutcome(outcome.period, outcome.inputs, outputs, blocked=False)
            return outcome
        # Offline replay: the only injectable fault is nondeterminism.
        draw = rng.random()
        outcome = inner.step(inputs)
        if draw < profile.replay_flip_rate and not outcome.blocked:
            self._fire(FaultKind.REPLAY_FLIP)
            flipped = self._flip(outcome.outputs, inner.outputs)
            if flipped is not None:
                return StepOutcome(outcome.period, outcome.inputs, flipped, blocked=False)
        return outcome

    def _flip(self, outputs: frozenset[str], alphabet: frozenset[str]) -> frozenset[str] | None:
        """Toggle one output signal so replay visibly diverges."""
        if outputs:
            victim = sorted(outputs)[self._rng.randrange(len(outputs))]
            return outputs - {victim}
        available = sorted(alphabet)
        if not available:
            return None
        return outputs | {available[self._rng.randrange(len(available))]}
