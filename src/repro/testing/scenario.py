"""Seeded scenario factory for the randomized conformance campaign.

The paper's soundness claims (Lemmas 6-7: verdicts are never false
violations, learned models refine monotonically) were exercised on two
hand-built workloads.  This module generates *arbitrarily many*: a
:class:`ScenarioSpec` describes a small architecture with one to three
legacy slots, each slot pairing a modeled driver (the context ``M_a^c``)
with a hidden server component and a per-slot ACTL property — clocked
bounded-response, unclocked until, or pure safety with deadlock as the
violation channel.

Every scenario carries a **known answer**: the factory either plants a
violation (a slow round beyond the property bound, a refused round that
deadlocks a deterministic driver, a seeded mutant) or guarantees its
absence (the hidden component *is* the conformant reference protocol,
optionally padded with unreachable chaff states), and then certifies
the expectation by full-composition model checking —
``context ∥ M_r ⊨ φ ∧ ¬δ`` — at construction time.  The campaign
(:mod:`tools.campaign <tools.campaign>`) re-derives that ground truth
independently and asserts that every configuration of the synthesis
loop (incremental on/off, dense core on/off, sharded, fault-injected)
and the :mod:`repro.baselines` learners agree with it.

Scenario sizes deliberately straddle the dense-core boundary: a slice
of scenarios uses a :func:`repro.workloads.counter_client` driver large
enough that the very first verify iteration composes a product beyond
:data:`repro.automata.interning.DENSE_STATE_FLOOR` states, so the
adaptive dense/dict choice is exercised in both regimes.

Specs serialize to plain JSON (states are repr-stable strings, every
list canonically sorted), which is what makes shrunk regression
fixtures under ``tests/fixtures/scenarios/`` both human-readable and
hash-seed independent; see :mod:`repro.testing.shrink`.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field, replace

from ..automata.automaton import Automaton
from ..automata.composition import compose, compose_all
from ..automata.transform import pad_states
from ..errors import ModelError, SynthesisError
from ..legacy.component import LegacyComponent
from ..legacy.interface import interface_of
from ..logic.checker import ModelChecker
from ..logic.formulas import DEADLOCK_FREE, Formula, conjunction
from ..logic.parser import parse
from ..muml.architecture import Architecture
from ..muml.component import Component, Port
from ..muml.pattern import CoordinationPattern, Role
from ..persistence import automaton_from_dict, automaton_to_dict
from ..synthesis.settings import SynthesisSettings
from ..workloads import counter_client, latency_server, mutate_component
from .faults import FaultProfile

__all__ = [
    "SlotSpec",
    "ScenarioSpec",
    "Scenario",
    "CampaignConfig",
    "ConfigOutcome",
    "ScenarioEvaluation",
    "build_scenario",
    "generate_scenario",
    "ground_truth",
    "run_scenario",
    "default_matrix",
    "full_matrix",
    "evaluate_scenario",
    "baseline_verdicts",
    "spec_fingerprint",
    "LARGE_EVERY",
]

#: Every ``LARGE_EVERY``-th seed generates a dense-floor-crossing
#: scenario (driver periods in the high hundreds), so a 50-scenario
#: smoke slice still exercises the adaptive boundary at least once.
LARGE_EVERY = 25

#: Verdict names used throughout specs, truths, and campaign reports.
PROVEN, VIOLATION = "proven", "violation"


def _verdict_name(verdict) -> str:
    # Lazy: repro.synthesis.iterate imports repro.testing at load time,
    # so naming its Verdict enum here must not close the import cycle.
    from ..synthesis.iterate import Verdict

    return {
        Verdict.PROVEN: PROVEN,
        Verdict.REAL_VIOLATION: VIOLATION,
        Verdict.BUDGET_EXCEEDED: "budget-exceeded",
    }[verdict]


# ----------------------------------------------------------------- specs


@dataclass(frozen=True)
class SlotSpec:
    """One legacy slot: driver, hidden component, reference, property."""

    name: str
    label: str
    client: dict
    hidden: dict
    reference: dict
    property: str
    expectation: str
    family: str = "response"
    plant: str = "conform"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "label": self.label,
            "client": self.client,
            "hidden": self.hidden,
            "reference": self.reference,
            "property": self.property,
            "expectation": self.expectation,
            "family": self.family,
            "plant": self.plant,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SlotSpec":
        return cls(**{key: payload[key] for key in (
            "name", "label", "client", "hidden", "reference", "property",
            "expectation", "family", "plant",
        )})


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully serializable scenario description with its known answer."""

    name: str
    seed: int
    joint: bool
    slots: tuple[SlotSpec, ...]
    expectation: str

    def to_dict(self) -> dict:
        return {
            "format": 1,
            "name": self.name,
            "seed": self.seed,
            "joint": self.joint,
            "slots": [slot.to_dict() for slot in self.slots],
            "expectation": self.expectation,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        return cls(
            name=payload["name"],
            seed=payload["seed"],
            joint=payload["joint"],
            slots=tuple(SlotSpec.from_dict(slot) for slot in payload["slots"]),
            expectation=payload["expectation"],
        )


def spec_fingerprint(spec: ScenarioSpec) -> str:
    """A short stable digest of the spec's canonical JSON form."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class Scenario:
    """A built scenario: the spec plus the live objects the loop needs."""

    spec: ScenarioSpec
    architecture: Architecture = field(compare=False)
    components: dict[str, LegacyComponent] = field(compare=False)
    contexts: dict[str, Automaton] = field(compare=False)
    hiddens: dict[str, Automaton] = field(compare=False)
    properties: dict[str, Formula] = field(compare=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def verdict_keys(self) -> tuple[str, ...]:
        """The keys a run of this scenario produces verdicts under."""
        if self.spec.joint and len(self.spec.slots) > 1:
            return ("joint",)
        return tuple(slot.name for slot in self.spec.slots)


# ----------------------------------------------------------- construction


def build_scenario(spec: ScenarioSpec) -> Scenario:
    """Rebuild the architecture, components, and properties from a spec.

    Deterministic and pure: the same spec (e.g. loaded from a fixture,
    or produced by the shrinker) always yields the same scenario, on
    any ``PYTHONHASHSEED``.
    """
    architecture = Architecture(spec.name)
    contexts: dict[str, Automaton] = {}
    hiddens: dict[str, Automaton] = {}
    components: dict[str, LegacyComponent] = {}
    properties: dict[str, Formula] = {}

    clients: list[Automaton] = []
    references: list[Automaton] = []
    for slot in spec.slots:
        client = automaton_from_dict(slot.client)
        hidden = automaton_from_dict(slot.hidden)
        reference = automaton_from_dict(slot.reference)
        contexts[slot.name] = client
        hiddens[slot.name] = hidden
        components[slot.name] = LegacyComponent(hidden, name=slot.name)
        properties[slot.name] = parse(slot.property)
        clients.append(client)
        references.append(reference)

    if spec.joint and len(spec.slots) > 1:
        driver = compose_all(clients, name=f"{spec.name}-drivers")
        roles = [Role("driver", driver)]
        bindings: dict[str, tuple[str, str | None]] = {"driver": ("driver", "main")}
        for slot, reference in zip(spec.slots, references):
            roles.append(Role(f"{slot.name}Device", reference))
            architecture.add_legacy(slot.name)
            bindings[f"{slot.name}Device"] = (slot.name, None)
        pattern = CoordinationPattern(
            f"{spec.name}-pattern",
            roles,
            constraint=conjunction([properties[slot.name] for slot in spec.slots]),
        )
        architecture.add_component(Component("driver", [Port("main", roles[0], driver)]))
        architecture.instantiate(pattern, bindings, name=f"{spec.name}#joint")
    else:
        for slot, client, reference in zip(spec.slots, clients, references):
            driver_role = Role(f"{slot.name}Driver", client)
            device_role = Role(f"{slot.name}Device", reference)
            pattern = CoordinationPattern(
                f"{slot.name}-pattern",
                [driver_role, device_role],
                constraint=properties[slot.name],
            )
            driver_name = f"{slot.name}Driver"
            architecture.add_component(
                Component(driver_name, [Port("main", driver_role, client)])
            )
            architecture.add_legacy(slot.name)
            architecture.instantiate(
                pattern,
                {
                    f"{slot.name}Driver": (driver_name, "main"),
                    f"{slot.name}Device": (slot.name, None),
                },
                name=f"{slot.name}#0",
            )

    return Scenario(
        spec=spec,
        architecture=architecture,
        components=components,
        contexts=contexts,
        hiddens=hiddens,
        properties=properties,
    )


def _slot_truth(client: Automaton, hidden: Automaton, property: Formula) -> str:
    """White-box ground truth for one slot: ``client ∥ M_r ⊨ φ ∧ ¬δ``."""
    checker = ModelChecker(compose(client, hidden))
    holds = checker.holds(property) and checker.holds(DEADLOCK_FREE)
    return PROVEN if holds else VIOLATION


def ground_truth(scenario: Scenario) -> dict[str, str]:
    """The oracle: full-composition model checking, per verdict key.

    For separate slots this checks each ``client_i ∥ M_r^i`` pair; for a
    joint scenario it composes *all* drivers and *all* hidden components
    into one product and checks the conjunction — exactly the system the
    multi-legacy synthesis reasons about.  The ``"scenario"`` key
    aggregates: proven iff every key is proven.
    """
    spec = scenario.spec
    truth: dict[str, str] = {}
    if spec.joint and len(spec.slots) > 1:
        parts: list[Automaton] = []
        for slot in spec.slots:
            parts.append(scenario.contexts[slot.name])
            parts.append(scenario.hiddens[slot.name])
        product = compose_all(parts, name=f"{spec.name}-truth")
        checker = ModelChecker(product)
        conj = conjunction([scenario.properties[slot.name] for slot in spec.slots])
        holds = checker.holds(conj) and checker.holds(DEADLOCK_FREE)
        truth["joint"] = PROVEN if holds else VIOLATION
    else:
        for slot in spec.slots:
            truth[slot.name] = _slot_truth(
                scenario.contexts[slot.name],
                scenario.hiddens[slot.name],
                scenario.properties[slot.name],
            )
    truth["scenario"] = (
        PROVEN if all(value == PROVEN for value in truth.values()) else VIOLATION
    )
    return truth


# ------------------------------------------------------------- generation


def _lazy_client(ping: str, pong: str, prefix: str) -> Automaton:
    """A may-idle driver (the canonical ping client, reparameterized)."""
    return Automaton(
        inputs={pong},
        outputs={ping},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), (ping,), "waiting"),
            ("waiting", (pong,), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {f"{prefix}.idle"}, "waiting": {f"{prefix}.waiting"}},
        name=f"{prefix}(lazy)",
    )


def _slot_property(family: str, label: str, bound: int) -> str:
    if family == "response":
        return f"AG ({label}.waiting -> AF[1,{bound}] {label}.idle)"
    if family == "until":
        return f"AG ({label}.waiting -> A[{label}.waiting U {label}.idle])"
    if family == "safety":
        return f"A[] ({label}.idle or {label}.waiting)"
    raise ModelError(f"unknown property family {family!r}")


def _drop_round_ping(hidden: Automaton, round_index: int) -> Automaton:
    """The refusal plant: delete round ``round_index``'s ping transition."""
    source = f"ready{round_index}"
    kept = [
        transition
        for transition in hidden.transitions
        if not (transition.source == source and transition.interaction.inputs)
    ]
    if len(kept) == len(hidden.transitions):
        raise ModelError(f"no ping transition to drop at {source!r}")
    return Automaton(
        states=hidden.states,
        inputs=hidden.inputs,
        outputs=hidden.outputs,
        transitions=kept,
        initial=hidden.initial,
        labels=hidden.label_map,
        name=f"{hidden.name}-refuse{round_index}",
    )


def generate_scenario(seed: int, *, profile: str = "default") -> Scenario:
    """Generate one seeded scenario with a certified known answer.

    ``profile`` picks the size envelope: ``"default"`` mixes tiny to
    medium scenarios and promotes every :data:`LARGE_EVERY`-th seed to a
    dense-floor-crossing one; ``"tiny"`` caps everything small (used by
    property tests where wall-clock matters more than coverage).

    The returned scenario's ``spec.expectation`` (and each slot's) is
    *certified*: whatever the plant intended, the factory re-derives the
    truth by full-composition model checking before stamping it.
    """
    rng = random.Random(seed)
    large = profile == "default" and seed % LARGE_EVERY == 0 and seed > 0
    if large:
        slot_count, joint = 1, False
    else:
        slot_count = rng.choices([1, 2, 3], weights=[0.6, 0.3, 0.1])[0]
        joint = slot_count > 1 and rng.random() < 0.5

    slots: list[SlotSpec] = []
    for index in range(slot_count):
        label = f"c{index}"
        ping, pong = f"ping{index}", f"pong{index}"
        bound = rng.choice([2, 3, 4])
        family = rng.choices(["response", "until", "safety"], weights=[0.5, 0.25, 0.25])[0]

        if large:
            period: int | None = rng.randint(550, 760)
            round_count = 1
        elif joint or profile == "tiny":
            period = rng.choice([None, 1, 2])
            round_count = rng.randint(1, 2)
        else:
            period = rng.choice([None, None, 1, rng.randint(2, 6)])
            round_count = rng.randint(1, 4)
        latencies = [rng.randint(1, bound) for _ in range(round_count)]

        plants = ["conform", "overbuilt", "mutant"]
        if family == "response":
            plants.append("slow-round")
        if period is not None:  # a deterministic driver makes refusals deadlock
            plants.append("refusal")
        plant = rng.choice(["conform"] + plants) if large else rng.choice(plants)

        if period is None:
            client = _lazy_client(ping, pong, label)
        else:
            client = counter_client(period, ping=ping, pong=pong, prefix=label)

        reference = latency_server(latencies, ping=ping, pong=pong, name=f"{label}srv")
        hidden = reference._hidden
        if plant == "overbuilt":
            # Pads raise the interface's assumed state bound, and joint
            # scenarios pay that bound once per slot in their conformance
            # suites — keep the chaff small there so campaigns stay fast.
            pad_count = rng.randint(2, 6) if joint else rng.randint(3, 24)
            hidden = pad_states(hidden, pad_count, seed=rng.randrange(2**30))
        elif plant == "slow-round":
            slow = list(latencies)
            slow[rng.randrange(len(slow))] = bound + rng.randint(1, 3)
            hidden = latency_server(slow, ping=ping, pong=pong, name=f"{label}srv")._hidden
        elif plant == "refusal":
            hidden = _drop_round_ping(hidden, rng.randrange(round_count))
        elif plant == "mutant":
            mutant = mutate_component(
                LegacyComponent(hidden, name=f"{label}srv"),
                rng.randrange(2**30),
                mutations=rng.randint(1, 3),
            )
            hidden = mutant._hidden

        property_text = _slot_property(family, label, bound)
        expectation = _slot_truth(client, hidden, parse(property_text))
        slots.append(
            SlotSpec(
                name=f"slot{index}",
                label=label,
                client=automaton_to_dict(client),
                hidden=automaton_to_dict(hidden),
                reference=automaton_to_dict(reference._hidden),
                property=property_text,
                expectation=expectation,
                family=family,
                plant=plant,
            )
        )

    overall = (
        PROVEN if all(slot.expectation == PROVEN for slot in slots) else VIOLATION
    )
    spec = ScenarioSpec(
        name=f"scenario-{seed}",
        seed=seed,
        joint=joint,
        slots=tuple(slots),
        expectation=overall,
    )
    return build_scenario(spec)


# ---------------------------------------------------------------- running


def run_scenario(
    scenario: Scenario, settings: SynthesisSettings | None = None
) -> dict[str, str]:
    """One pass of ``integrate()`` over the scenario, as verdict names.

    Returns one entry per :attr:`Scenario.verdict_keys` plus the
    aggregated ``"scenario"`` key.  The modeled part is correct by
    construction, so an architecture-verification failure is reported
    as its own (always-disagreeing) pseudo-verdict rather than raised.
    """
    from ..integration import integrate

    report = integrate(scenario.architecture, scenario.components, settings=settings)
    verdicts: dict[str, str] = {}
    if not report.architecture.ok:
        for key in scenario.verdict_keys:
            verdicts[key] = "architecture-failed"
        verdicts["scenario"] = "architecture-failed"
        return verdicts
    if report.joint is not None:
        verdicts["joint"] = _verdict_name(report.joint.verdict)
    for name, result in report.placements.items():
        verdicts[name] = _verdict_name(result.verdict)
    for name in report.skipped_placements:
        verdicts[name] = "skipped"
    parts = [value for key, value in verdicts.items() if key != "scenario"]
    if any(value == VIOLATION for value in parts):
        verdicts["scenario"] = VIOLATION
    elif all(value == PROVEN for value in parts):
        verdicts["scenario"] = PROVEN
    else:
        verdicts["scenario"] = "budget-exceeded"
    return verdicts


# ----------------------------------------------------------- config matrix


@dataclass(frozen=True)
class CampaignConfig:
    """One named cell of the campaign's configuration matrix."""

    name: str
    settings: SynthesisSettings


def default_matrix(seed: int = 0) -> tuple[CampaignConfig, ...]:
    """One config per matrix axis: the per-scenario differential set.

    Every axis of {incremental, dense, parallelism, fault-profile} is
    exercised against the baseline; the full 16-cell cross product is
    available via :func:`full_matrix` for the nightly campaign's
    deepest slice.
    """
    return (
        CampaignConfig("baseline", SynthesisSettings()),
        CampaignConfig("non-incremental", SynthesisSettings(incremental=False)),
        CampaignConfig("dense-on", SynthesisSettings(dense=True)),
        CampaignConfig("dense-off", SynthesisSettings(dense=False)),
        CampaignConfig("sharded-k4", SynthesisSettings(parallelism=4)),
        CampaignConfig(
            "chaos-mild",
            SynthesisSettings(fault_profile=FaultProfile.mild(seed % 1009 + 1)),
        ),
    )


def full_matrix(seed: int = 0) -> tuple[CampaignConfig, ...]:
    """The full cross product: incremental × dense × K × fault profile."""
    configs: list[CampaignConfig] = []
    for incremental in (True, False):
        for dense in (True, False):
            for parallelism in (1, 4):
                for faults in (None, FaultProfile.mild(seed % 1009 + 1)):
                    name = (
                        f"{'inc' if incremental else 'noinc'}"
                        f"-{'dense' if dense else 'dict'}-k{parallelism}"
                        f"-{'mild' if faults else 'nofault'}"
                    )
                    configs.append(
                        CampaignConfig(
                            name,
                            SynthesisSettings(
                                incremental=incremental,
                                dense=dense,
                                parallelism=parallelism,
                                fault_profile=faults,
                            ),
                        )
                    )
    return tuple(configs)


# ------------------------------------------------------------- evaluation


@dataclass(frozen=True)
class ConfigOutcome:
    """Verdicts of one config run, with wall-clock for the report."""

    config: str
    verdicts: dict[str, str]
    seconds: float


@dataclass(frozen=True)
class ScenarioEvaluation:
    """The differential result of one scenario across the matrix.

    ``degraded`` lists fault-injected runs that soundly gave up
    (``budget-exceeded``) instead of a definite verdict — explained by
    the sound-degradation contract, so not disagreements; a *wrong
    definite* verdict under faults still is one.
    """

    spec: ScenarioSpec
    truth: dict[str, str]
    outcomes: tuple[ConfigOutcome, ...]
    baselines: dict[str, dict[str, str]]
    disagreements: tuple[str, ...]
    degraded: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.disagreements


def baseline_verdicts(scenario: Scenario) -> dict[str, dict[str, str]]:
    """Cross-check via the §6 baselines: L* identification and BBC.

    Per separate slot: (a) learn the hidden machine exactly with L*
    under a perfect equivalence oracle, convert the hypothesis, compose
    it with the driver, and model-check ``φ ∧ ¬δ`` — an independent
    learner must reproduce the ground truth; (b) run black-box checking
    of ``φ`` and compare with the property-only truth (BBC does not
    decide deadlock freedom).

    The BBC comparison is **one-sided**.  BBC confirms counterexamples
    by replaying the trace prefix on the component, which cannot
    certify violations that hinge on *blocking*: an intermediate
    hypothesis missing continuations deadlocks the composition, an
    AU/AF obligation fails on that truncated path, and the executable
    prefix "confirms" a violation the real system does not have.  (The
    campaign found this on its first sweep; the shrunk witness lives in
    ``tests/fixtures/scenarios/`` and the mechanism is the quiescence
    observation ioco-style testing adds — see ``docs/conformance.md``.)
    So a BBC false alarm is recorded (``bbc_false_alarm``) but only a
    *missed* violation counts as a disagreement.  Joint scenarios and
    dense-floor drivers are skipped (the baselines' cost profile is the
    reason the paper's scheme exists).
    """
    from ..baselines import (
        BBCVerdict,
        BlackBoxChecker,
        LStarLearner,
        MembershipOracle,
        PerfectEquivalenceOracle,
        hypothesis_to_automaton,
    )

    spec = scenario.spec
    results: dict[str, dict[str, str]] = {}
    if spec.joint and len(spec.slots) > 1:
        return results
    for slot in spec.slots:
        client = scenario.contexts[slot.name]
        hidden = scenario.hiddens[slot.name]
        if len(client.states) > 64 or len(hidden.states) > 48:
            continue
        component = LegacyComponent(hidden, name=slot.name)
        universe = interface_of(component).universe()
        property = scenario.properties[slot.name]

        learner = LStarLearner(
            MembershipOracle(component),
            universe,
            PerfectEquivalenceOracle(hidden, universe),
        )
        learned = hypothesis_to_automaton(learner.learn())
        checker = ModelChecker(compose(client, learned))
        lstar = (
            PROVEN
            if checker.holds(property) and checker.holds(DEADLOCK_FREE)
            else VIOLATION
        )

        property_truth = ModelChecker(compose(client, hidden)).holds(property)
        bbc_component = LegacyComponent(hidden, name=slot.name)
        bbc = BlackBoxChecker(
            client,
            bbc_component,
            property,
            universe=universe,
            equivalence=PerfectEquivalenceOracle(hidden, universe),
        ).run()
        bbc_name = {
            BBCVerdict.SATISFIED: PROVEN,
            BBCVerdict.VIOLATED: VIOLATION,
            BBCVerdict.BUDGET_EXCEEDED: "budget-exceeded",
        }[bbc.verdict]
        bbc_expected = PROVEN if property_truth else VIOLATION
        results[slot.name] = {
            "lstar": lstar,
            "bbc": bbc_name,
            "bbc_expected": bbc_expected,
            "bbc_false_alarm": (
                "yes" if bbc_name == VIOLATION and bbc_expected == PROVEN else "no"
            ),
        }
    return results


def evaluate_scenario(
    scenario: Scenario,
    configs: "tuple[CampaignConfig, ...] | None" = None,
    *,
    with_baselines: bool = False,
) -> ScenarioEvaluation:
    """Run a scenario through the matrix and diff everything.

    Disagreement kinds collected:

    * a config's verdict differs from the full-composition ground truth
      (this also catches cross-config divergence — all configs are held
      to the same truth); for fault-injected configs a sound
      ``budget-exceeded`` degrade is recorded under ``degraded``
      instead — silent faults (e.g. a crash-reset inside a long
      output-free trace) can legitimately starve the loop of progress —
      but a wrong *definite* verdict under faults is still a
      disagreement;
    * the certified ``expectation`` recorded in the spec differs from
      the freshly derived truth (a generator regression);
    * a baseline learner disagrees with its expected answer.
    """
    configs = configs if configs is not None else default_matrix(scenario.spec.seed)
    truth = ground_truth(scenario)
    disagreements: list[str] = []
    degraded: list[str] = []

    if truth["scenario"] != scenario.spec.expectation:
        disagreements.append(
            f"spec expectation {scenario.spec.expectation!r} != derived truth "
            f"{truth['scenario']!r}"
        )

    outcomes: list[ConfigOutcome] = []
    for config in configs:
        begin = time.perf_counter()
        try:
            verdicts = run_scenario(scenario, config.settings)
        except (SynthesisError, ModelError) as error:
            verdicts = {key: f"error: {error}" for key in (*scenario.verdict_keys, "scenario")}
        seconds = time.perf_counter() - begin
        outcomes.append(ConfigOutcome(config.name, verdicts, seconds))
        faulted = (
            config.settings.fault_profile is not None
            and config.settings.fault_profile.active
        )
        for key in (*scenario.verdict_keys, "scenario"):
            expected = truth.get(key, truth["scenario"])
            actual = verdicts.get(key, "missing")
            if actual == expected:
                continue
            if faulted and actual == "budget-exceeded":
                degraded.append(f"config {config.name}: {key} degraded soundly")
                continue
            disagreements.append(
                f"config {config.name}: {key} verdict {actual!r} != "
                f"ground truth {expected!r}"
            )

    baselines: dict[str, dict[str, str]] = {}
    if with_baselines:
        baselines = baseline_verdicts(scenario)
        for slot_name, row in baselines.items():
            if row["lstar"] != truth[slot_name]:
                disagreements.append(
                    f"baseline lstar: {slot_name} verdict {row['lstar']!r} != "
                    f"ground truth {truth[slot_name]!r}"
                )
            if row["bbc"] != row["bbc_expected"] and row["bbc_false_alarm"] != "yes":
                disagreements.append(
                    f"baseline bbc: {slot_name} verdict {row['bbc']!r} != "
                    f"property-only truth {row['bbc_expected']!r}"
                )

    return ScenarioEvaluation(
        spec=scenario.spec,
        truth=truth,
        outcomes=tuple(outcomes),
        baselines=baselines,
        disagreements=tuple(disagreements),
        degraded=tuple(degraded),
    )
