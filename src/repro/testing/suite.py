"""Model-based test suites (the paper's [23]: "Model-based testing of
mechatronic systems").

Once a behavioral model exists — a learned incomplete automaton, a
pattern role, or a component model — it can drive systematic testing
beyond single counterexamples: a *coverage suite* derives one test case
per transition (or per state), executes all of them against the real
component, and reports every divergence.  The paper uses exactly this
machinery to generate test traces from models ("we can use a set of
counterexamples of a model checker to generate test traces for our
model"); the suite generator here is the coverage-driven complement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..automata.analysis import shortest_run_to, transition_cover_runs
from ..automata.automaton import Automaton
from ..automata.incomplete import IncompleteAutomaton
from ..automata.runs import Run
from ..errors import ModelError
from ..legacy.component import LegacyComponent
from .executor import TestExecution, execute_test
from .testcase import TestCase, TestStep

__all__ = ["Coverage", "SuiteReport", "generate_suite", "run_suite"]

Coverage = Literal["transitions", "states"]


@dataclass(frozen=True)
class SuiteReport:
    """Outcome of executing a model-based test suite."""

    suite_name: str
    executions: tuple[TestExecution, ...]

    @property
    def total(self) -> int:
        return len(self.executions)

    @property
    def passed(self) -> int:
        return sum(1 for execution in self.executions if execution.confirmed)

    @property
    def failed(self) -> tuple[TestExecution, ...]:
        return tuple(execution for execution in self.executions if not execution.confirmed)

    @property
    def ok(self) -> bool:
        return self.passed == self.total

    def summary(self) -> str:
        lines = [f"suite {self.suite_name}: {self.passed}/{self.total} passed"]
        for execution in self.failed:
            lines.append(
                f"  FAILED {execution.testcase.name}: {execution.verdict.value} "
                f"at step {execution.divergence_index}"
            )
        return "\n".join(lines)


def _run_to_case(run: Run, name: str) -> TestCase:
    steps = tuple(TestStep(i.inputs, i.outputs) for i, _ in run.steps)
    return TestCase(name=name, steps=steps)


def generate_suite(
    model: "Automaton | IncompleteAutomaton",
    *,
    coverage: Coverage = "transitions",
    name: str = "suite",
) -> list[TestCase]:
    """Derive a coverage test suite from a behavioral model.

    ``transitions`` coverage produces runs that jointly execute every
    reachable transition; ``states`` coverage one shortest run per
    reachable state.  The model must be an exact or under-approximating
    behavioral model of the component (a learned model qualifies:
    observation conformance is precisely under-approximation of runs).
    """
    automaton = model.automaton if isinstance(model, IncompleteAutomaton) else model
    if not isinstance(automaton, Automaton):
        raise ModelError(f"cannot derive a suite from {model!r}")
    cases: list[TestCase] = []
    if coverage == "transitions":
        for index, run in enumerate(transition_cover_runs(automaton)):
            cases.append(_run_to_case(run, f"{name}/t{index}"))
    elif coverage == "states":
        for index, state in enumerate(sorted(automaton.states, key=repr)):
            run = shortest_run_to(automaton, lambda s, target=state: s == target)
            if run is None:
                continue
            cases.append(_run_to_case(run, f"{name}/s{index}"))
    else:
        raise ModelError(f"unknown coverage criterion {coverage!r}")
    return cases


def run_suite(
    component: LegacyComponent,
    suite: "list[TestCase] | tuple[TestCase, ...]",
    *,
    port: str = "port",
    name: str = "suite",
) -> SuiteReport:
    """Execute every case from the initial state and collect a report."""
    executions = tuple(execute_test(component, case, port=port) for case in suite)
    return SuiteReport(suite_name=name, executions=executions)
