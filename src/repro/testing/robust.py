"""Fault-tolerant test execution: retries, deadlines, validated verdicts.

:class:`RobustExecutor` wraps :func:`repro.testing.executor.execute_test`
and :func:`repro.testing.replay.replay` with a :class:`RetryPolicy`:

* bounded retries of the live phase with exponential backoff and
  *deterministic* jitter (derived from the test name, never from RNG
  state, so retry schedules are reproducible);
* a per-step deadline (cooperative: each step's wall time is checked
  after it returns, which deterministically catches injected hangs) and
  a per-test deadline enforced through the existing
  :class:`~repro.automata.sharding.WorkerPool`
  (:meth:`~repro.automata.sharding.WorkerPool.call`);
* recording validation before the result is trusted: when faults are
  possible, every completed live execution is replayed and a
  :class:`~repro.errors.ReplayError` divergence triggers re-record /
  re-replay recovery for a bounded number of rounds.

The outcome is a :class:`RobustExecution`.  When every round is
exhausted it is *inconclusive* — mapped by the synthesis loop to
``TestVerdict.INCONCLUSIVE``, never merged into ``M_l`` and never
reported as a real integration error (Lemma 6's no-false-negatives
guarantee requires a validated fault-free run for ``CONFIRMED``).
Inconclusive counterexamples wait in a bounded :class:`Quarantine` and
are retried in later iterations.

The fault-free fast path adds one ``try`` block and a handful of
attribute reads per test — pinned ≤5% of loop time by
``benchmarks/bench_incremental_loop.py::test_robust_overhead_guard``.
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import nullcontext
from dataclasses import dataclass

from ..automata.runs import Run
from ..automata.sharding import WorkerPool, get_pool
from ..errors import (
    ExecutionError,
    FaultInjectionError,
    RemoteComponentError,
    ReplayError,
    SynthesisError,
    TestTimeoutError,
)
from .executor import TestExecution, TestVerdict, execute_test
from .replay import ReplayResult, replay
from .testcase import TestCase

__all__ = [
    "TEST_RETRIES_ENV",
    "RetryPolicy",
    "RobustExecution",
    "RobustExecutor",
    "Quarantine",
]

#: Environment variable overriding the default retry budget: the
#: chaos CI job sets ``REPRO_TEST_RETRIES`` alongside
#: ``REPRO_FAULT_SEED`` without touching any call site.
TEST_RETRIES_ENV = "REPRO_TEST_RETRIES"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-recovery knobs of the robust executor.

    Parameters
    ----------
    max_attempts:
        Live ``execute_test`` attempts per recording round (so
        ``max_attempts - 1`` retries).  Raised errors that are not
        replay divergences count against this budget.
    replay_attempts:
        Validation replays per recording before the divergence is
        treated as a corrupted recording (re-record round).
    record_rounds:
        Full re-record cycles after a validation divergence before the
        execution is declared inconclusive.
    backoff_base:
        First retry delay in seconds; ``0`` (the default) disables
        sleeping entirely — synthesis-loop retries against an in-process
        component gain nothing from waiting.
    backoff_factor:
        Exponential growth of the delay per retry.
    backoff_jitter:
        Maximal extra delay fraction; the actual fraction is derived
        from CRC-32 of ``(test name, attempt)`` — deterministic, no
        shared RNG state.
    step_timeout:
        Per-step deadline in seconds (cooperative — checked after each
        step returns), or ``None`` for no step deadline.
    test_timeout:
        Per-test wall-clock deadline in seconds, enforced via
        :meth:`repro.automata.sharding.WorkerPool.call`, or ``None``.
    validate:
        Replay-validate every completed execution before trusting its
        verdict.  ``None`` (default) auto-enables validation exactly
        when the component can inject faults, keeping the fault-free
        fast path identical to the raw executor.
    """

    max_attempts: int = 3
    replay_attempts: int = 2
    record_rounds: int = 2
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    step_timeout: float | None = None
    test_timeout: float | None = None
    validate: bool | None = None

    def __post_init__(self) -> None:
        for name in ("max_attempts", "replay_attempts", "record_rounds"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SynthesisError(f"{name} must be a positive integer, got {value!r}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_jitter < 0:
            raise SynthesisError(
                "backoff_base/backoff_jitter must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base!r}/{self.backoff_jitter!r}/{self.backoff_factor!r}"
            )
        for name in ("step_timeout", "test_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise SynthesisError(f"{name} must be positive or None, got {value!r}")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The default policy with :data:`TEST_RETRIES_ENV` applied."""
        raw = os.environ.get(TEST_RETRIES_ENV, "").strip()
        if not raw:
            return cls()
        try:
            retries = int(raw)
        except ValueError:
            raise SynthesisError(
                f"{TEST_RETRIES_ENV} must be a non-negative integer, got {raw!r}"
            ) from None
        if retries < 0:
            raise SynthesisError(
                f"{TEST_RETRIES_ENV} must be a non-negative integer, got {raw!r}"
            )
        return cls(max_attempts=retries + 1)

    def delay(self, key: str, attempt: int) -> float:
        """The backoff before retry ``attempt`` (0-based), with jitter.

        Deterministic: the jitter fraction is CRC-32 of
        ``"{key}#{attempt}"`` scaled into ``[0, backoff_jitter]``, so a
        retried test always waits the same amount — no RNG state leaks
        between the fault schedule and the retry schedule.
        """
        if self.backoff_base <= 0:
            return 0.0
        raw = self.backoff_base * self.backoff_factor**attempt
        token = f"{key}#{attempt}".encode("utf-8", "backslashreplace")
        fraction = (zlib.crc32(token) % 10_000) / 10_000
        return raw * (1.0 + self.backoff_jitter * fraction)


@dataclass(frozen=True)
class RobustExecution:
    """Outcome of one supervised test execution.

    ``execution is None`` means *inconclusive*: the test could not be
    completed fault-free within the policy's budgets.  ``validated``
    means the recording survived a full deterministic replay, whose
    result is carried in ``replay`` so the learning step never replays
    twice.
    """

    testcase: TestCase
    execution: TestExecution | None
    replay: ReplayResult | None
    validated: bool
    attempts: int  #: live ``execute_test`` calls, across all rounds
    retries: int  #: attempts beyond the first of each round
    timeouts: int  #: step/test deadline expiries observed
    faults: int  #: ``FaultInjectionError`` aborts observed
    replays_performed: int  #: validation replays actually run
    re_records: int  #: recording rounds restarted after replay divergence
    reason: str | None = None  #: why the execution is inconclusive

    @property
    def inconclusive(self) -> bool:
        return self.execution is None

    @property
    def verdict(self) -> TestVerdict:
        if self.execution is None:
            return TestVerdict.INCONCLUSIVE
        return self.execution.verdict


class _StepDeadline:
    """Transparent proxy enforcing a per-step wall-clock deadline.

    Cooperative by design: the deadline is checked after each step
    returns.  In-process, that is the strongest guarantee available —
    a truly unbounded stall can only be *abandoned* (the per-test pool
    deadline leaves the worker thread behind), never preempted, because
    Python threads cannot be killed.  Preemptive per-step deadlines —
    where the stalled component is actually terminated — require the
    out-of-process adapter: :class:`repro.legacy.remote.RemoteComponent`
    enforces ``RemotePolicy.step_deadline`` by ``SIGKILL``-ing the host
    process (covered by the blocking-step regression test in
    ``tests/test_robust.py``).  This proxy still deterministically
    converts every injected (bounded) hang into a
    :class:`~repro.errors.TestTimeoutError`.
    """

    __slots__ = ("_component", "_limit", "_clock")

    def __init__(self, component, limit: float, clock):
        self._component = component
        self._limit = limit
        self._clock = clock

    def __getattr__(self, name: str):
        return getattr(self._component, name)

    def step(self, inputs=()):
        begin = self._clock()
        outcome = self._component.step(inputs)
        elapsed = self._clock() - begin
        if elapsed > self._limit:
            raise TestTimeoutError(
                f"step on {self._component.name!r} took {elapsed:.3f}s, "
                f"exceeding the {self._limit:.3f}s per-step deadline"
            )
        return outcome


class Quarantine:
    """Bounded holding pen for inconclusive counterexamples.

    The loop pushes a counterexample here when its test came back
    inconclusive and drains the queue at the start of every later
    iteration, so quarantined counterexamples are *eventually retried*.
    Entries whose retry budget is spent move to :attr:`expired` — still
    *reported* (surfaced on the synthesis result), never silently
    dropped; pushes beyond ``capacity`` are counted in :attr:`dropped`.
    """

    def __init__(self, capacity: int = 32, max_retries: int = 4):
        if capacity < 1 or max_retries < 1:
            raise SynthesisError(
                f"quarantine capacity/max_retries must be positive, got "
                f"{capacity!r}/{max_retries!r}"
            )
        self.capacity = capacity
        self.max_retries = max_retries
        self._entries: list[tuple[Run, bool]] = []
        self._attempts: dict[str, int] = {}
        self.dropped = 0
        self.expired: list[Run] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, run: Run, *, probe: bool = False) -> bool:
        """Queue a counterexample for a later retry; False when full/known."""
        key = repr(run)
        if any(repr(entry) == key for entry, _ in self._entries):
            return False
        attempts = self._attempts.get(key, 0)
        if attempts >= self.max_retries:
            self.expired.append(run)
            return False
        if len(self._entries) >= self.capacity:
            self.dropped += 1
            return False
        self._entries.append((run, probe))
        self._attempts[key] = attempts + 1
        return True

    def drain(self) -> list[tuple[Run, bool]]:
        """Remove and return every queued ``(run, needs_probing)`` entry."""
        entries = self._entries
        self._entries = []
        return entries

    @property
    def pending(self) -> tuple[Run, ...]:
        return tuple(run for run, _ in self._entries)

    def unresolved(self) -> tuple[Run, ...]:
        """Everything still quarantined or expired — for final reporting."""
        return tuple(self.pending) + tuple(self.expired)


class RobustExecutor:
    """Supervises live executions and validation replays under a policy.

    One executor serves one synthesis loop; it is stateless between
    calls apart from the injected clock/sleep hooks (overridable for
    tests).  All randomness lives in the component's fault schedule and
    the policy's deterministic jitter, so a supervised run is exactly
    reproducible from the fault seed.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        *,
        tracer=None,
        flight=None,
        events=None,
        pool: WorkerPool | None = None,
        clock=time.perf_counter,
        sleep=time.sleep,
    ):
        from ..obs.flight import NULL_FLIGHT_RECORDER
        from ..obs.tracer import resolve_tracer

        self.policy = policy if policy is not None else RetryPolicy()
        self.tracer = resolve_tracer(tracer)
        self.flight = flight if flight is not None else NULL_FLIGHT_RECORDER
        # ``events`` is the owning loop's ProgressEmitter-shaped callable
        # (``events(name, **payload)``); when absent, retry/timeout events
        # still reach an active flight recorder's ring directly.
        self._events = events if events else None
        self._pool = pool
        self._clock = clock
        self._sleep = sleep

    def _notify(self, name: str, **payload) -> None:
        if self._events is not None:
            self._events(name, **payload)
        elif self.flight.enabled:
            self.flight.record(name, **payload)

    # ---------------------------------------------------------------- helpers

    @property
    def pool(self) -> WorkerPool:
        return self._pool if self._pool is not None else get_pool()

    @staticmethod
    def _fault_scope(component):
        armed = getattr(component, "inject_faults", None)
        return armed() if armed is not None else nullcontext()

    def _should_validate(self, component) -> bool:
        if self.policy.validate is not None:
            return self.policy.validate
        return bool(getattr(component, "fault_injection_active", False))

    # -------------------------------------------------------------- execution

    def execute(self, component, testcase: TestCase, *, port: str = "port") -> RobustExecution:
        """Execute a test with retries, deadlines, and validation."""
        policy = self.policy
        validate = self._should_validate(component)
        deadline = (
            self._clock() + policy.test_timeout if policy.test_timeout is not None else None
        )
        attempts = retries = timeouts = faults = replays = re_records = 0
        reason: str | None = None

        for _ in range(policy.record_rounds):
            execution: TestExecution | None = None
            for attempt in range(policy.max_attempts):
                if attempt:
                    retries += 1
                    self._notify("test.retry", test=testcase.name, attempt=attempt)
                    pause = policy.delay(testcase.name, attempt - 1)
                    if pause > 0:
                        self._sleep(pause)
                attempts += 1
                span = (
                    self.tracer.span("test.retry", test=testcase.name, attempt=attempt)
                    if attempt
                    else nullcontext()
                )
                try:
                    with span:
                        execution = self._run_live(component, testcase, port, deadline)
                    break
                except TestTimeoutError as error:
                    timeouts += 1
                    reason = str(error)
                    self._notify(
                        "test.timeout", test=testcase.name, attempt=attempt
                    )
                    self.flight.anomaly(
                        "test_timeout", test=testcase.name, error=str(error)
                    )
                    # Out-of-process components expose ``interrupt()``:
                    # SIGKILL the host so an abandoned worker thread's
                    # blocked read turns into an immediate EOF and the
                    # deadline genuinely preempts the stalled process.
                    interrupt = getattr(component, "interrupt", None)
                    if interrupt is not None:
                        interrupt("test-deadline")
                except ReplayError:
                    raise  # never expected live; do not mask a harness bug
                except ExecutionError as error:
                    if isinstance(error, FaultInjectionError):
                        faults += 1
                    reason = str(error)
            if execution is None:
                break  # live budget exhausted: inconclusive
            if not validate:
                return RobustExecution(
                    testcase=testcase,
                    execution=execution,
                    replay=None,
                    validated=False,
                    attempts=attempts,
                    retries=retries,
                    timeouts=timeouts,
                    faults=faults,
                    replays_performed=replays,
                    re_records=re_records,
                )
            try:
                replay_result, used = self._validate_recording(component, execution, port)
                replays += used
            except ReplayError as error:
                replays += policy.replay_attempts
                re_records += 1
                reason = str(error)
                continue  # corrupted recording: re-record from scratch
            except (TestTimeoutError, FaultInjectionError, RemoteComponentError) as error:
                # A *real* failure mid-validation (the host process died
                # or hung during the replay — unreachable in-process,
                # where the replay path injects only divergences).  The
                # recording is untrusted and the component state is
                # gone: count the failure and re-record from scratch so
                # the round budget still bounds total work.
                if isinstance(error, TestTimeoutError):
                    timeouts += 1
                else:
                    faults += 1
                replays += 1
                re_records += 1
                reason = str(error)
                continue
            return RobustExecution(
                testcase=testcase,
                execution=execution,
                replay=replay_result,
                validated=True,
                attempts=attempts,
                retries=retries,
                timeouts=timeouts,
                faults=faults,
                replays_performed=replays,
                re_records=re_records,
            )

        final_reason = reason or "retry budget exhausted"
        self._notify("test.inconclusive", test=testcase.name, reason=final_reason)
        self.flight.anomaly(
            "test_inconclusive",
            test=testcase.name,
            detail=final_reason,
            attempts=attempts,
            timeouts=timeouts,
            faults=faults,
        )
        return RobustExecution(
            testcase=testcase,
            execution=None,
            replay=None,
            validated=False,
            attempts=attempts,
            retries=retries,
            timeouts=timeouts,
            faults=faults,
            replays_performed=replays,
            re_records=re_records,
            reason=final_reason,
        )

    def _run_live(self, component, testcase: TestCase, port: str, deadline) -> TestExecution:
        policy = self.policy
        target = component
        if policy.step_timeout is not None:
            target = _StepDeadline(component, policy.step_timeout, self._clock)
        with self._fault_scope(component):
            if deadline is None:
                return execute_test(target, testcase, port=port)
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise TestTimeoutError(
                    f"test {testcase.name!r} reached its "
                    f"{policy.test_timeout:.3f}s deadline before attempt start"
                )
            return self.pool.call(
                lambda: execute_test(target, testcase, port=port), timeout=remaining
            )

    # ---------------------------------------------------------------- replay

    def _validate_recording(
        self, component, execution: TestExecution, port: str
    ) -> tuple[ReplayResult, int]:
        """Replay until the recording is confirmed; raise after the budget."""
        last: ReplayError | None = None
        for attempt in range(self.policy.replay_attempts):
            try:
                return self.replay_once(component, execution.recording, port=port), attempt + 1
            except ReplayError as error:
                last = error
        assert last is not None
        raise last

    def replay_once(self, component, recording, *, port: str = "port") -> ReplayResult:
        """One armed, traced replay (shared by validation and recovery)."""
        begin = self._clock()
        with self.tracer.span("monitor.replay", steps=len(recording.steps)):
            with self._fault_scope(component):
                result = replay(component, recording, port=port)
        self.tracer.metrics.observe("monitor_replay_seconds", self._clock() - begin)
        return result

    def replay_validated(self, component, recording, *, port: str = "port") -> ReplayResult:
        """Replay with the policy's retry budget (for recovery paths)."""
        last: ReplayError | None = None
        for _ in range(self.policy.replay_attempts):
            try:
                return self.replay_once(component, recording, port=port)
            except ReplayError as error:
                last = error
        assert last is not None
        raise last
