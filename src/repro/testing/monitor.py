"""Monitoring events and the paper's listing-style rendering (§5).

The relevant information to observe while testing is "the state,
messages, and the time when a message is received/send or a state is
changed" (§5, citing Definition 1 and [34]).  Three event kinds mirror
the paper's Listings 1.2/1.3/1.5:

* ``[Message] name="…", portName="…", type="outgoing"|"incoming"``
* ``[CurrentState] name="…"``
* ``[Timing] count=n``

Minimal instrumentation records messages (and their period numbers)
only; full instrumentation adds state and timing events — which is only
probe-effect-free during deterministic replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.interaction import Interaction
from ..automata.runs import Run

__all__ = [
    "MessageEvent",
    "StateEvent",
    "TimingEvent",
    "MonitorEvent",
    "render_events",
    "message_events",
    "events_for_run",
]


@dataclass(frozen=True)
class MessageEvent:
    """A message observed at a port."""

    name: str
    port: str
    direction: str  # "outgoing" or "incoming", from the component's view
    period: int

    def render(self) -> str:
        return (
            f'[Message] name="{self.name}", portName="{self.port}", type="{self.direction}"'
        )


@dataclass(frozen=True)
class StateEvent:
    """A state observation (FULL instrumentation only)."""

    name: str
    period: int

    def render(self) -> str:
        return f'[CurrentState] name="{self.name}"'


@dataclass(frozen=True)
class TimingEvent:
    """A period-counter observation (FULL instrumentation only)."""

    count: int

    def render(self) -> str:
        return f"[Timing] count={self.count}"


MonitorEvent = MessageEvent | StateEvent | TimingEvent


def render_events(events: "list[MonitorEvent] | tuple[MonitorEvent, ...]") -> str:
    """The listing text: one rendered event per line."""
    return "\n".join(event.render() for event in events)


def _interaction_messages(interaction: Interaction, port: str, period: int) -> list[MessageEvent]:
    events = [
        MessageEvent(name, port, "outgoing", period) for name in sorted(interaction.outputs)
    ]
    events.extend(
        MessageEvent(name, port, "incoming", period) for name in sorted(interaction.inputs)
    )
    return events


def message_events(trace: "tuple[Interaction, ...]", *, port: str) -> list[MessageEvent]:
    """Minimal-instrumentation events for a trace (Listing 1.2 shape)."""
    events: list[MessageEvent] = []
    for period, interaction in enumerate(trace, start=1):
        events.extend(_interaction_messages(interaction, port, period))
    return events


def events_for_run(run: Run, *, port: str, state_name=str) -> list[MonitorEvent]:
    """Full-instrumentation events for an observed run (Listing 1.3 shape).

    Emits, per executed step: the pre-step state, the step's messages,
    and the post-step period count; the final state closes the listing.
    ``state_name`` renders state identifiers (default ``str``).
    """
    events: list[MonitorEvent] = []
    states = run.states
    for index, (interaction, _target) in enumerate(run.steps):
        events.append(StateEvent(state_name(states[index]), index))
        events.extend(_interaction_messages(interaction, port, index + 1))
        events.append(TimingEvent(index + 1))
    events.append(StateEvent(state_name(run.last_state), len(run.steps)))
    if run.blocked is not None:
        events.extend(_interaction_messages(run.blocked, port, len(run.steps) + 1))
    return events
