"""Command-line demo: ``python -m repro``.

Runs the paper's running example (or the multi-legacy / learning
comparison scenarios) and prints the artifacts in the paper's notation.

Examples::

    python -m repro railcab --shuttle faulty
    python -m repro railcab --shuttle correct --counterexamples 3
    python -m repro multi --front forgetful
    python -m repro compare --extra-states 2 5 10
"""

from __future__ import annotations

import argparse
import sys

from . import railcab
from .synthesis import (
    IntegrationSynthesizer,
    MultiLegacySynthesizer,
    SynthesisSettings,
    render_counterexample_listing,
    render_iteration_table,
    render_markdown_report,
    summarize,
)


def _settings(args: argparse.Namespace) -> SynthesisSettings:
    """The one place CLI flags (and their env fallbacks) become settings.

    Flags left at their defaults defer to the environment knobs
    (``REPRO_PARALLELISM``, ``REPRO_CHECKER_PARALLELISM``,
    ``REPRO_TRACE``, ``REPRO_TEST_RETRIES``, ``REPRO_FAULT_SEED``,
    ``REPRO_REMOTE``) inside :class:`SynthesisSettings` resolution.
    """
    tracer = None
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from .obs import Tracer

        # An explicit --trace wins over REPRO_TRACE: the flag builds its
        # own tracer and _export_trace writes it where the flag said.
        tracer = Tracer()
        args._tracer = tracer
    flight = None
    blackbox_dir = getattr(args, "blackbox", None)
    if blackbox_dir:
        from .obs import FlightRecorder

        # Like --trace, an explicit --blackbox wins over REPRO_BLACKBOX.
        flight = FlightRecorder(blackbox_dir)
        args._flight = flight
    progress = None
    if getattr(args, "progress", False):
        from .obs import TtyProgressSink

        progress = TtyProgressSink()
        args._progress = progress
    retry_policy = None
    test_retries = getattr(args, "test_retries", None)
    test_timeout = getattr(args, "test_timeout", None)
    if test_retries is not None or test_timeout is not None:
        from .testing import RetryPolicy

        base = RetryPolicy.from_env()
        retry_policy = RetryPolicy(
            max_attempts=(base.max_attempts if test_retries is None else test_retries + 1),
            replay_attempts=base.replay_attempts,
            record_rounds=base.record_rounds,
            test_timeout=test_timeout,
        )
    fault_profile = None
    fault_seed = getattr(args, "fault_seed", None)
    if fault_seed is not None:
        from .testing import FaultProfile

        fault_profile = FaultProfile.mild(fault_seed)
    remote = None
    step_deadline = getattr(args, "remote_step_deadline", None)
    if step_deadline is not None:
        from .legacy.remote import RemotePolicy

        remote = RemotePolicy(step_deadline=step_deadline)
    elif getattr(args, "remote", False):
        remote = True
    return SynthesisSettings(
        max_iterations=getattr(args, "max_iterations", None),
        counterexamples_per_iteration=getattr(args, "counterexamples", 1),
        incremental=not getattr(args, "no_incremental", False),
        parallelism=getattr(args, "parallelism", None),
        checker_parallelism=getattr(args, "checker_parallelism", None),
        dense=getattr(args, "dense", None),
        dense_product=getattr(args, "dense_product", None),
        product_strategy=getattr(args, "product_strategy", None),
        retry_policy=retry_policy,
        fault_profile=fault_profile,
        remote=remote,
        tracer=tracer,
        flight_recorder=flight,
        progress=progress,
    )


def _export_trace(args: argparse.Namespace) -> None:
    """Flush observability outputs: progress line, trace, blackbox note."""
    progress = getattr(args, "_progress", None)
    if progress is not None:
        progress.close()
    tracer = getattr(args, "_tracer", None)
    if tracer is not None:
        from .obs import write_trace

        write_trace(tracer, args.trace, format=args.trace_format)
        print(f"\ntrace ({args.trace_format}) written to {args.trace}")
    flight = getattr(args, "_flight", None)
    if flight is not None and flight.last_path is not None:
        print(f"blackbox dumped to {flight.last_path} ({flight.dumps} anomalies)")


def _add_loop_flags(parser: argparse.ArgumentParser) -> None:
    """The shared loop-tuning flag group (feeds :func:`_settings`)."""
    group = parser.add_argument_group("synthesis loop")
    group.add_argument(
        "--max-iterations", type=int, default=None, metavar="N",
        help="iteration budget (default: the entry point's own default)",
    )
    group.add_argument(
        "--no-incremental", action="store_true",
        help="rebuild closures/product/checker from scratch every iteration",
    )
    group.add_argument(
        "--parallelism", type=int, default=None, metavar="K",
        help="shard the product re-exploration across K shards "
        "(default: $REPRO_PARALLELISM or 1; results are identical)",
    )
    group.add_argument(
        "--checker-parallelism", type=int, default=None, metavar="K",
        help="shard the model checker's fixpoints across K shards "
        "(default: $REPRO_CHECKER_PARALLELISM, then --parallelism; "
        "results are identical)",
    )
    group.add_argument(
        "--dense", dest="dense", action="store_true", default=None,
        help="force the checker's dense integer-indexed fixpoint core "
        "(default: automatic by product size, or $REPRO_DENSE; "
        "results are identical — see docs/performance.md)",
    )
    group.add_argument(
        "--no-dense", dest="dense", action="store_false",
        help="force the legacy dict/set fixpoint solvers",
    )
    group.add_argument(
        "--dense-product", dest="dense_product", action="store_true", default=None,
        help="force the product BFS over interned ids and flat shard "
        "frontiers (default: automatic by estimated joint size, or "
        "$REPRO_DENSE_PRODUCT; results are identical)",
    )
    group.add_argument(
        "--no-dense-product", dest="dense_product", action="store_false",
        help="force the legacy dict-cache product exploration",
    )
    group.add_argument(
        "--product-strategy", dest="product_strategy", default=None,
        choices=("sequential", "thread", "process"), metavar="STRATEGY",
        help="force how product shard workers run: sequential, thread, or "
        "process (default: $REPRO_PRODUCT_STRATEGY, then automatic "
        "workload-based selection; results are identical)",
    )
    group.add_argument(
        "--test-retries", type=int, default=None, metavar="N",
        help="retry a failed/timed-out test execution up to N times "
        "(default: $REPRO_TEST_RETRIES or 2; see docs/robustness.md)",
    )
    group.add_argument(
        "--test-timeout", type=float, default=None, metavar="SECONDS",
        help="per-test wall-clock deadline; expiry counts as a retryable "
        "timeout (default: none)",
    )
    group.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="inject seed-driven faults into the component under test "
        "(the mild chaos profile; $REPRO_FAULT_SEED works without the "
        "flag; verdicts stay identical to the fault-free run)",
    )
    group.add_argument(
        "--remote", action="store_true", default=False,
        help="run the component under test out of process behind the "
        "supervised subprocess adapter ($REPRO_REMOTE works without "
        "the flag; verdicts stay identical to in-process runs — see "
        "docs/remote.md); with --fault-seed, faults are injected "
        "inside the host process",
    )
    group.add_argument(
        "--remote-step-deadline", type=float, default=None, metavar="SECONDS",
        help="per-operation wall-clock deadline for the remote host; "
        "expiry SIGKILLs the process and counts as a retryable "
        "timeout (default: 5.0; implies --remote)",
    )
    group.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a span trace of the run to FILE "
        "(see docs/observability.md; $REPRO_TRACE works without the flag)",
    )
    group.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl",
        help="trace file format: jsonl events or a Chrome/Perfetto "
        "trace-event JSON (default: jsonl)",
    )
    group.add_argument(
        "--blackbox", metavar="DIR", default=None,
        help="arm the flight recorder: on any anomaly dump a "
        "self-contained blackbox.json into DIR "
        "(see docs/observability.md; $REPRO_BLACKBOX works without "
        "the flag)",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="render a live single-line progress status to stderr "
        "while the loop runs",
    )

SHUTTLES = {
    "correct": lambda: railcab.correct_rear_shuttle(convoy_ticks=1),
    "faulty": railcab.faulty_rear_shuttle,
    "overbuilt": lambda: railcab.overbuilt_rear_shuttle(extra_states=10),
}

FRONTS = {
    "correct": railcab.correct_front_shuttle,
    "forgetful": railcab.forgetful_front_shuttle,
}


def _run_railcab(args: argparse.Namespace) -> int:
    component = SHUTTLES[args.shuttle]()
    synthesizer = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        settings=_settings(args),
        port="rearRole",
    )
    result = synthesizer.run()
    print(summarize(result))
    print()
    print(render_iteration_table(result))
    if args.report:
        from .legacy import interface_of

        report = render_markdown_report(
            result,
            universe=interface_of(component).universe(),
            legacy_inputs=railcab.FRONT_TO_REAR,
            legacy_outputs=railcab.REAR_TO_FRONT,
            title=f"RailCab integration: {args.shuttle} shuttle",
        )
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"\nmarkdown report written to {args.report}")
    if result.violation_witness is not None:
        print("\nviolation witness:")
        print(
            render_counterexample_listing(
                result.violation_witness,
                legacy_inputs=railcab.FRONT_TO_REAR,
                legacy_outputs=railcab.REAR_TO_FRONT,
            )
        )
    _export_trace(args)
    return 0 if result.proven == (args.shuttle != "faulty") else 1


def _run_multi(args: argparse.Namespace) -> int:
    synthesizer = MultiLegacySynthesizer(
        None,
        [FRONTS[args.front](), railcab.correct_rear_shuttle(convoy_ticks=1)],
        railcab.PATTERN_CONSTRAINT,
        labelers={
            "frontShuttle": railcab.front_state_labeler,
            "rearShuttle": railcab.rear_state_labeler,
        },
        settings=_settings(args),
    )
    result = synthesizer.run()
    print(f"verdict: {result.verdict.value}")
    print(f"iterations: {result.iteration_count}, tests: {result.total_tests}")
    for name, model in sorted(result.final_models.items()):
        print(
            f"  {name}: {len(model.states)} states, {len(model.transitions)} transitions, "
            f"{len(model.refusals)} refusals learned"
        )
    if result.violation_witness is not None:
        print(f"violation ({result.violation_kind}): {result.violation_witness}")
    _export_trace(args)
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from .baselines import LStarLearner, MembershipOracle, PerfectEquivalenceOracle
    from .legacy import interface_of

    print(f"{'extra':>6} {'|M_r|':>6} {'ours tests':>11} {'ours learned':>13} {'L* member':>10}")
    for extra in args.extra_states:
        component = railcab.overbuilt_rear_shuttle(extra_states=extra)
        ours = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.overbuilt_rear_shuttle(extra_states=extra),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        universe = interface_of(component).universe()
        learner = LStarLearner(
            MembershipOracle(railcab.overbuilt_rear_shuttle(extra_states=extra)),
            universe,
            PerfectEquivalenceOracle(component._hidden, universe),
        )
        learner.learn()
        print(
            f"{extra:>6} {component.state_bound:>6} {ours.total_tests:>11} "
            f"{ours.learned_states:>13} {learner.statistics.membership_queries:>10}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Legacy component integration via verification + testing (Giese et al.)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    railcab_parser = subparsers.add_parser("railcab", help="the paper's running example")
    railcab_parser.add_argument("--shuttle", choices=sorted(SHUTTLES), default="faulty")
    railcab_parser.add_argument(
        "--counterexamples", type=int, default=1, metavar="K",
        help="counterexamples tested per verification round",
    )
    railcab_parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write a markdown integration report to PATH",
    )
    _add_loop_flags(railcab_parser)
    railcab_parser.set_defaults(handler=_run_railcab)

    multi_parser = subparsers.add_parser("multi", help="two legacy shuttles (§7 extension)")
    multi_parser.add_argument("--front", choices=sorted(FRONTS), default="correct")
    _add_loop_flags(multi_parser)
    multi_parser.set_defaults(handler=_run_multi)

    compare_parser = subparsers.add_parser("compare", help="ours vs L* query counts")
    compare_parser.add_argument(
        "--extra-states", type=int, nargs="+", default=[2, 5, 10], metavar="N"
    )
    compare_parser.set_defaults(handler=_run_compare)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
