"""Conformance testing: the W-method and Vasilevskii's bound (§6).

Regular-inference equivalence queries are realized in practice via
conformance testing (Chow [11], Vasilevskii [47]).  Given a hypothesis
DFA with ``k`` states and an assumed implementation bound of ``l``
states, the W-method executes the suite ``P · Σ^{≤ l−k} · W`` (with
``P`` a transition cover and ``W`` a characterization set); Vasilevskii
gives the total-length upper bound ``O(k² · l · |Σ|^{l−k+1})`` — the
exponential dependence on the state-count uncertainty that the paper's
approach avoids by never needing an equivalence check at all.
"""

from __future__ import annotations

from collections import deque
from itertools import product

from ..automata.interaction import InteractionUniverse
from .angluin import LStarDFA
from .teacher import Word

__all__ = [
    "transition_cover",
    "characterization_set",
    "w_method_suite",
    "vasilevskii_bound",
]


def transition_cover(hypothesis: LStarDFA, universe: InteractionUniverse) -> list[Word]:
    """``P``: access words for every state, extended by every symbol."""
    access: dict[int, Word] = {hypothesis.initial: ()}
    queue: deque[int] = deque([hypothesis.initial])
    while queue:
        state = queue.popleft()
        for symbol in universe:
            target = hypothesis.delta[(state, symbol)]
            if target not in access:
                access[target] = access[state] + (symbol,)
                queue.append(target)
    cover: list[Word] = [()]
    for state in sorted(access):
        for symbol in universe:
            cover.append(access[state] + (symbol,))
    return cover


def characterization_set(hypothesis: LStarDFA, universe: InteractionUniverse) -> list[Word]:
    """``W``: suffixes distinguishing every pair of hypothesis states.

    Computed by backwards partition refinement: start from the
    accept/reject split and, as long as some pair is undistinguished,
    find a symbol leading the pair into an already-distinguished pair.
    """
    states = list(hypothesis.states)
    distinguishing: dict[tuple[int, int], Word] = {}
    for a_index, a in enumerate(states):
        for b in states[a_index + 1 :]:
            if (a in hypothesis.accepting) != (b in hypothesis.accepting):
                distinguishing[(a, b)] = ()
                distinguishing[(b, a)] = ()
    changed = True
    while changed:
        changed = False
        for a_index, a in enumerate(states):
            for b in states[a_index + 1 :]:
                if (a, b) in distinguishing:
                    continue
                for symbol in universe:
                    next_pair = (hypothesis.delta[(a, symbol)], hypothesis.delta[(b, symbol)])
                    if next_pair[0] == next_pair[1]:
                        continue
                    if next_pair in distinguishing:
                        word = (symbol,) + distinguishing[next_pair]
                        distinguishing[(a, b)] = word
                        distinguishing[(b, a)] = word
                        changed = True
                        break
    words = {word for word in distinguishing.values()}
    words.add(())
    return sorted(words, key=lambda w: (len(w), [s.sort_key() for s in w]))


def w_method_suite(
    hypothesis: LStarDFA, universe: InteractionUniverse, *, state_bound: int
) -> list[Word]:
    """The W-method test suite ``P · Σ^{≤ l−k} · W`` (deduplicated).

    ``state_bound`` is the assumed upper bound ``l`` on the number of
    implementation states; the common assumption ``l ≥ k`` (§6, [4]) is
    enforced by clamping the middle-part depth at zero.
    """
    symbols = tuple(universe)
    depth = max(0, state_bound - hypothesis.size)
    cover = transition_cover(hypothesis, universe)
    characterize = characterization_set(hypothesis, universe)
    middles: list[Word] = [()]
    for length in range(1, depth + 1):
        middles.extend(tuple(word) for word in product(symbols, repeat=length))
    suite: dict[Word, None] = {}
    for prefix in cover:
        for middle in middles:
            for suffix in characterize:
                suite[prefix + middle + suffix] = None
    return list(suite)


def vasilevskii_bound(k: int, l: int, alphabet_size: int) -> int:
    """Vasilevskii's upper bound ``k² · l · |Σ|^{l−k+1}`` on suite length."""
    if k < 1 or l < k or alphabet_size < 1:
        raise ValueError("need 1 <= k <= l and a non-empty alphabet")
    return k * k * l * alphabet_size ** (l - k + 1)
