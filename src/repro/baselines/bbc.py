"""Black-box checking (Peled, Vardi, Yannakakis [43]) as a baseline (§6).

BBC interleaves L* with model checking: each intermediate hypothesis is
composed with the context and checked; a counterexample is executed on
the real component — confirmed means a real error, refuted means the
hypothesis was wrong and the trace feeds back into the learner.  When a
hypothesis satisfies the property, an (expensive, conformance-based or
perfect) equivalence query decides whether learning must continue.

Contrast with the paper's scheme: BBC's hypotheses are *neither over-
nor under-approximations*, so a passing check proves nothing until the
equivalence oracle has vouched for the hypothesis — i.e. until the
whole machine has been identified.  The paper's chaotic-closure series
is always a safe over-approximation, so the first passing check is
already a proof (Lemma 5), and no equivalence query ever runs.

To keep the comparison fair, hypothesis states are labeled by replaying
their access words with full instrumentation — the same grey-box state
monitoring the paper's approach uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..automata.automaton import Automaton
from ..automata.composition import compose
from ..automata.interaction import InteractionUniverse
from ..automata.runs import Run
from ..errors import SynthesisError
from ..legacy.component import Instrumentation, LegacyComponent
from ..logic.checker import ModelChecker
from ..logic.compositional import assert_compositional
from ..logic.counterexample import counterexample
from ..logic.formulas import Formula
from ..synthesis.initial import StateLabeler
from .angluin import LStarDFA, LStarLearner, hypothesis_to_automaton
from .teacher import MembershipOracle, Word

__all__ = ["BBCVerdict", "BBCResult", "BlackBoxChecker"]


class BBCVerdict(Enum):
    SATISFIED = "satisfied"
    VIOLATED = "violated"
    BUDGET_EXCEEDED = "budget-exceeded"


@dataclass
class BBCResult:
    verdict: BBCVerdict
    rounds: int
    membership_queries: int
    equivalence_queries: int
    hypothesis_sizes: list[int] = field(default_factory=list)
    witness: Word | None = None
    witness_run: Run | None = None


class BlackBoxChecker:
    """Adaptive model checking of a black-box component against a context.

    Parameters mirror :class:`repro.synthesis.IntegrationSynthesizer`
    so benchmarks can run both on identical inputs.  The equivalence
    oracle must expose ``find_counterexample(hypothesis)``.
    """

    def __init__(
        self,
        context: Automaton,
        component: LegacyComponent,
        property: Formula,
        *,
        universe: InteractionUniverse,
        equivalence,
        labeler: StateLabeler | None = None,
        max_rounds: int = 100,
    ):
        assert_compositional(property)
        self.context = context
        self.component = component
        self.property = property
        self.universe = universe
        self.labeler = labeler
        self.equivalence = equivalence
        self.max_rounds = max_rounds
        self.membership = MembershipOracle(component)

    # ------------------------------------------------------------- labeling

    def _label_states(self, hypothesis: LStarDFA, automaton: Automaton) -> Automaton:
        if self.labeler is None:
            return automaton
        labels = {}
        for state in automaton.states:
            access = hypothesis.access.get(state)
            if access is None:
                continue
            self.component.reset()
            with self.component.instrumented(Instrumentation.FULL, live=False):
                for symbol in access:
                    outcome = self.component.step(symbol.inputs)
                    if outcome.blocked or outcome.outputs != symbol.outputs:
                        raise SynthesisError(
                            f"access word of hypothesis state {state} is not executable — "
                            "the hypothesis disagrees with the component"
                        )
                observed = self.component.monitor_state()
            labels[state] = frozenset(self.labeler(observed))
        return automaton.replace(labels=labels)

    # ----------------------------------------------------------------- main

    def _confirm(self, word: Word) -> bool:
        return self.membership.query(word)

    def run(self) -> BBCResult:
        learner = LStarLearner(self.membership, self.universe, self.equivalence)
        result = BBCResult(
            verdict=BBCVerdict.BUDGET_EXCEEDED,
            rounds=0,
            membership_queries=0,
            equivalence_queries=0,
        )
        for _ in range(self.max_rounds):
            result.rounds += 1
            learner._close()
            hypothesis = learner._hypothesis()
            result.hypothesis_sizes.append(hypothesis.size)
            automaton = self._label_states(
                hypothesis, hypothesis_to_automaton(hypothesis)
            )
            composed = compose(self.context, automaton, semantics="strict")
            checker = ModelChecker(composed)
            if not checker.holds(self.property):
                run = counterexample(composed, self.property, checker=checker)
                assert run is not None
                word = tuple(
                    interaction.restrict(self.universe.inputs, self.universe.outputs)
                    for interaction, _ in run.steps
                )
                if self._confirm(word):
                    result.verdict = BBCVerdict.VIOLATED
                    result.witness = word
                    result.witness_run = run
                    break
                # Spurious: the hypothesis predicted behavior the real
                # component refuses — a separating word for the learner.
                for length in range(1, len(word) + 1):
                    prefix = word[:length]
                    if prefix not in learner.prefixes:
                        learner.prefixes.append(prefix)
                continue
            # Hypothesis satisfies the property: only equivalence can
            # promote that into a statement about the real component.
            learner.statistics.equivalence_queries += 1
            separating = self.equivalence.find_counterexample(hypothesis)
            if separating is None:
                result.verdict = BBCVerdict.SATISFIED
                break
            for length in range(1, len(separating) + 1):
                prefix = separating[:length]
                if prefix not in learner.prefixes:
                    learner.prefixes.append(prefix)
        result.membership_queries = learner.statistics.membership_queries
        result.equivalence_queries = learner.statistics.equivalence_queries
        return result
