"""Baseline algorithms from the paper's related work (§6).

Angluin's L* regular inference, W-method conformance testing as the
practical equivalence oracle, and black-box checking — the approaches
the paper positions its context-guided over-approximation scheme
against.  Benchmarks compare their query/test counts with the
synthesis loop on identical components.
"""

from .angluin import LStarDFA, LStarLearner, LStarStatistics, hypothesis_to_automaton
from .bbc import BBCResult, BBCVerdict, BlackBoxChecker
from .conformance import (
    characterization_set,
    transition_cover,
    vasilevskii_bound,
    w_method_suite,
)
from .teacher import (
    ConformanceEquivalenceOracle,
    MembershipOracle,
    PerfectEquivalenceOracle,
    Word,
)

__all__ = [
    "LStarLearner",
    "LStarDFA",
    "LStarStatistics",
    "hypothesis_to_automaton",
    "MembershipOracle",
    "PerfectEquivalenceOracle",
    "ConformanceEquivalenceOracle",
    "Word",
    "transition_cover",
    "characterization_set",
    "w_method_suite",
    "vasilevskii_bound",
    "BlackBoxChecker",
    "BBCResult",
    "BBCVerdict",
]
