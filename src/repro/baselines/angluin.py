"""Angluin's L* — the classic regular-inference baseline (§6, [1]).

L* learns the component's *whole* trace language from membership and
equivalence queries, maintaining an observation table whose rows are
access prefixes and whose columns are distinguishing suffixes.  This is
the under-approximation strategy the paper contrasts its scheme with:
query complexity is ``O(|Σ| · n² · m)`` membership queries and at most
``n`` equivalence queries for an ``n``-state minimal DFA, *regardless
of how little of the machine the integration context actually touches*.

The learned object is a complete DFA over the interaction alphabet; a
word is accepted iff the component can execute it (prefix-closed).
:func:`hypothesis_to_automaton` converts the accepting part back into
the library's automaton model, so a learned hypothesis can be composed
and model-checked like any other behavior (as black-box checking does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata.automaton import Automaton, Transition
from ..automata.interaction import Interaction, InteractionUniverse
from ..errors import SynthesisError
from .teacher import MembershipOracle, Word

__all__ = ["LStarDFA", "LStarStatistics", "LStarLearner", "hypothesis_to_automaton"]


@dataclass(frozen=True)
class LStarDFA:
    """A complete DFA over the interaction alphabet."""

    states: tuple[int, ...]
    alphabet: tuple[Interaction, ...]
    initial: int
    accepting: frozenset[int]
    delta: dict[tuple[int, Interaction], int]
    access: dict[int, Word]  # a representative access word per state

    @property
    def size(self) -> int:
        return len(self.states)

    def run(self, word: Word) -> int:
        return self.run_from(self.initial, word)

    def run_from(self, state: int, word: Word) -> int:
        for symbol in word:
            state = self.delta[(state, symbol)]
        return state

    def accepts(self, word: Word) -> bool:
        return self.run(word) in self.accepting


@dataclass
class LStarStatistics:
    """Query accounting for one L* run."""

    membership_queries: int = 0
    equivalence_queries: int = 0
    rounds: int = 0
    counterexamples: list[Word] = field(default_factory=list)


class LStarLearner:
    """Angluin's L* with the classic all-prefixes counterexample handling.

    Parameters
    ----------
    membership:
        The membership oracle (executes the component).
    universe:
        The interaction alphabet Σ.
    equivalence:
        An object with ``find_counterexample(hypothesis) -> Word | None``.
    max_rounds:
        Safety budget on equivalence rounds.
    """

    def __init__(
        self,
        membership: MembershipOracle,
        universe: InteractionUniverse,
        equivalence,
        *,
        max_rounds: int = 200,
        counterexample_handling: str = "all-prefixes",
    ):
        if counterexample_handling not in ("all-prefixes", "rivest-schapire"):
            raise SynthesisError(
                f"unknown counterexample handling {counterexample_handling!r}"
            )
        self.membership = membership
        self.alphabet = tuple(universe)
        self.equivalence = equivalence
        self.max_rounds = max_rounds
        self.counterexample_handling = counterexample_handling
        self.prefixes: list[Word] = [()]
        self.suffixes: list[Word] = [()]
        self.statistics = LStarStatistics()

    # ---------------------------------------------------------------- table

    def _ask(self, word: Word) -> bool:
        before = self.membership.queries
        answer = self.membership.query(word)
        self.statistics.membership_queries += self.membership.queries - before
        return answer

    def _row(self, prefix: Word) -> tuple[bool, ...]:
        return tuple(self._ask(prefix + suffix) for suffix in self.suffixes)

    def _close(self) -> None:
        """Make the table closed and consistent (loop until stable)."""
        while True:
            rows = {self._row(prefix) for prefix in self.prefixes}
            # Closedness: every one-symbol extension row must exist in S.
            extension = next(
                (
                    prefix + (symbol,)
                    for prefix in self.prefixes
                    for symbol in self.alphabet
                    if self._row(prefix + (symbol,)) not in rows
                ),
                None,
            )
            if extension is not None:
                self.prefixes.append(extension)
                continue
            # Consistency: equal rows must stay equal under every symbol.
            fixed = False
            for i, first in enumerate(self.prefixes):
                for second in self.prefixes[i + 1 :]:
                    if self._row(first) != self._row(second):
                        continue
                    for symbol in self.alphabet:
                        row_a = self._row(first + (symbol,))
                        row_b = self._row(second + (symbol,))
                        if row_a != row_b:
                            column = next(
                                index for index in range(len(row_a)) if row_a[index] != row_b[index]
                            )
                            self.suffixes.append((symbol,) + self.suffixes[column])
                            fixed = True
                            break
                    if fixed:
                        break
                if fixed:
                    break
            if not fixed:
                return

    def _hypothesis(self) -> LStarDFA:
        row_to_state: dict[tuple[bool, ...], int] = {}
        access: dict[int, Word] = {}
        for prefix in self.prefixes:
            row = self._row(prefix)
            if row not in row_to_state:
                row_to_state[row] = len(row_to_state)
                access[row_to_state[row]] = prefix
        delta: dict[tuple[int, Interaction], int] = {}
        for row, state in row_to_state.items():
            prefix = access[state]
            for symbol in self.alphabet:
                target_row = self._row(prefix + (symbol,))
                if target_row not in row_to_state:
                    raise SynthesisError("observation table is not closed")  # pragma: no cover
                delta[(state, symbol)] = row_to_state[target_row]
        accepting = frozenset(
            state for row, state in row_to_state.items() if row[self.suffixes.index(())]
        )
        return LStarDFA(
            states=tuple(range(len(row_to_state))),
            alphabet=self.alphabet,
            initial=row_to_state[self._row(())],
            accepting=accepting,
            delta=delta,
            access=access,
        )

    # ------------------------------------------------- counterexample handling

    def _absorb_all_prefixes(self, counterexample: Word) -> None:
        """Angluin's original treatment: every prefix becomes an access word."""
        for length in range(1, len(counterexample) + 1):
            prefix = counterexample[:length]
            if prefix not in self.prefixes:
                self.prefixes.append(prefix)

    def _absorb_rivest_schapire(self, hypothesis: LStarDFA, counterexample: Word) -> None:
        """Rivest–Schapire: binary-search the split point, add ONE suffix.

        Let ``αᵢ = M(access(δ̂(w[:i])) · w[i:])``.  ``α₀`` is the real
        verdict on the counterexample and ``α_n`` the hypothesis's, so
        the sequence flips somewhere; binary search finds an ``i`` with
        ``αᵢ ≠ αᵢ₊₁`` and the distinguishing suffix ``w[i+1:]`` joins
        ``E``.  Exponentially fewer membership queries per
        counterexample than the all-prefixes treatment.
        """

        def alpha(index: int) -> bool:
            access = hypothesis.access[hypothesis.run(counterexample[:index])]
            return self._ask(access + counterexample[index:])

        low, high = 0, len(counterexample)
        alpha_low = alpha(low)
        if alpha_low == alpha(high):
            # Degenerate (can happen when the table was already refined by
            # an earlier suffix this round): fall back to all-prefixes.
            self._absorb_all_prefixes(counterexample)
            return
        while high - low > 1:
            middle = (low + high) // 2
            if alpha(middle) == alpha_low:
                low = middle
            else:
                high = middle
        suffix = counterexample[high:]
        if suffix not in self.suffixes:
            self.suffixes.append(suffix)
        # The access word of the split state must be present as a prefix so
        # the new suffix can separate rows.
        prefix = counterexample[:high]
        if prefix not in self.prefixes:
            self.prefixes.append(prefix)

    # ----------------------------------------------------------------- learn

    def learn(self) -> LStarDFA:
        """Run L* to completion and return the final hypothesis."""
        for _ in range(self.max_rounds):
            self.statistics.rounds += 1
            self._close()
            hypothesis = self._hypothesis()
            self.statistics.equivalence_queries += 1
            counterexample = self.equivalence.find_counterexample(hypothesis)
            if counterexample is None:
                return hypothesis
            self.statistics.counterexamples.append(counterexample)
            if self.counterexample_handling == "rivest-schapire" and counterexample:
                self._absorb_rivest_schapire(hypothesis, counterexample)
            else:
                self._absorb_all_prefixes(counterexample)
        raise SynthesisError(f"L* did not converge within {self.max_rounds} rounds")


def hypothesis_to_automaton(hypothesis: LStarDFA, *, name: str = "L*-hypothesis") -> Automaton:
    """The accepting part of an L* DFA as a library automaton.

    Reject states (and transitions into them) are dropped: they encode
    "the component cannot do this", which the automaton model expresses
    by the absence of transitions.
    """
    accepting = hypothesis.accepting
    if hypothesis.initial not in accepting:
        raise SynthesisError("hypothesis rejects the empty word — no behavior at all")
    inputs: set[str] = set()
    outputs: set[str] = set()
    for symbol in hypothesis.alphabet:
        inputs |= symbol.inputs
        outputs |= symbol.outputs
    transitions = [
        Transition(state, symbol, target)
        for (state, symbol), target in hypothesis.delta.items()
        if state in accepting and target in accepting
    ]
    return Automaton(
        states=accepting,
        inputs=inputs,
        outputs=outputs,
        transitions=transitions,
        initial=[hypothesis.initial],
        name=name,
    )
