"""Teachers and oracles for regular-inference baselines (§6).

Regular inference views the system as a black box and asks a *Teacher*
membership queries ("is this word in the language?") and an *Oracle*
equivalence queries ("is this hypothesis the whole language?").  This
module provides both for executable legacy components:

* :class:`MembershipOracle` answers by executing the word on the
  component (reset + step per symbol) and caches answers;
* :class:`PerfectEquivalenceOracle` compares the hypothesis against the
  component's hidden behavior directly — a benchmark device that makes
  L* terminate exactly, so query counts can be compared fairly;
* :class:`ConformanceEquivalenceOracle` realizes the practical choice
  (§6: "conformance testing provides a systematic way of achieving an
  answer to an equivalence query") via the W-method with an assumed
  implementation state bound.

The *word* alphabet is the interaction universe: each symbol is one
``(inputs, outputs)`` pair executed in one period; a word is in the
component's language iff every symbol reacts with exactly the given
outputs.  The language is prefix-closed by construction.
"""

from __future__ import annotations

from ..automata.automaton import Automaton, State
from ..automata.interaction import Interaction, InteractionUniverse
from ..legacy.component import LegacyComponent

__all__ = [
    "Word",
    "MembershipOracle",
    "PerfectEquivalenceOracle",
    "ConformanceEquivalenceOracle",
]

#: A query word: a sequence of interaction symbols.
Word = tuple[Interaction, ...]


class MembershipOracle:
    """Answers membership queries by executing the component."""

    def __init__(self, component: LegacyComponent):
        self.component = component
        self.queries = 0
        self.cache_hits = 0
        self._cache: dict[Word, bool] = {}

    def query(self, word: Word) -> bool:
        word = tuple(word)
        if word in self._cache:
            self.cache_hits += 1
            return self._cache[word]
        self.queries += 1
        self.component.reset()
        accepted = True
        for symbol in word:
            outcome = self.component.step(symbol.inputs)
            if outcome.blocked or outcome.outputs != symbol.outputs:
                accepted = False
                break
        self._cache[word] = accepted
        return accepted


def _automaton_accepts(automaton: Automaton, word: Word) -> bool:
    """Does the (deterministic) automaton execute the word?"""
    state = next(iter(automaton.initial))
    for symbol in word:
        matching = [
            t for t in automaton.transitions_from(state) if t.interaction == symbol
        ]
        if not matching:
            return False
        state = matching[0].target
    return True


class PerfectEquivalenceOracle:
    """An exact oracle comparing a hypothesis with the true behavior.

    Only benchmarks use this: it inspects the hidden automaton (via a
    white-box handle the learner itself never receives) and returns a
    shortest separating word, which is what lets us count L*'s ideal
    query complexity without conflating it with conformance-test cost.
    """

    def __init__(self, truth: Automaton, universe: InteractionUniverse):
        self.truth = truth
        self.universe = universe
        self.queries = 0

    def find_counterexample(self, hypothesis) -> Word | None:
        """Shortest separating word via a product breadth-first search.

        Explores pairs of (truth state or reject-``None``, hypothesis
        state); a pair where exactly one side accepts yields the word.
        """
        from collections import deque

        self.queries += 1
        start = (next(iter(self.truth.initial)), hypothesis.initial)
        queue: deque[tuple[State | None, int, Word]] = deque([(start[0], start[1], ())])
        seen: set[tuple[State | None, int]] = {start}
        while queue:
            truth_state, hyp_state, word = queue.popleft()
            truth_accepts = truth_state is not None
            if truth_accepts != (hyp_state in hypothesis.accepting):
                return word
            for symbol in self.universe:
                if truth_state is None:
                    truth_target: State | None = None
                else:
                    matching = [
                        t
                        for t in self.truth.transitions_from(truth_state)
                        if t.interaction == symbol
                    ]
                    truth_target = matching[0].target if matching else None
                hyp_target = hypothesis.delta[(hyp_state, symbol)]
                key = (truth_target, hyp_target)
                if key not in seen:
                    seen.add(key)
                    queue.append((truth_target, hyp_target, (*word, symbol)))
        return None


class ConformanceEquivalenceOracle:
    """Equivalence via W-method conformance testing (Chow/Vasilevskii).

    Executes the generated test suite on the component; the first test
    whose pass/fail disagrees with the hypothesis is the counterexample.
    The suite size is exponential in ``state_bound - |hypothesis|``,
    which is exactly the cost the paper's approach avoids by starting
    from an over-approximation (§6 "Conclusion" of the related work).
    """

    def __init__(
        self,
        component: LegacyComponent,
        universe: InteractionUniverse,
        *,
        state_bound: int,
    ):
        self.membership = MembershipOracle(component)
        self.universe = universe
        self.state_bound = state_bound
        self.queries = 0
        self.tests_executed = 0

    def find_counterexample(self, hypothesis) -> Word | None:
        """``hypothesis`` is an L* DFA (see :mod:`repro.baselines.angluin`)."""
        from .conformance import w_method_suite

        self.queries += 1
        suite = w_method_suite(hypothesis, self.universe, state_bound=self.state_bound)
        for word in suite:
            self.tests_executed += 1
            real = self.membership.query(word)
            predicted = hypothesis.accepts(word)
            if real != predicted:
                return word
        return None
