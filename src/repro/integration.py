"""The top-level façade: one call from architecture to verdicts.

This is the workflow of the paper's Figure 2 as a single entry point:

1. verify the modeled part of the architecture (patterns, port
   refinement, optional system properties) — modeling errors are
   reported before any legacy component is touched;
2. for every legacy placement, extract its context (``M_a^c``) and run
   the iterative verify → test → learn synthesis against the supplied
   executable component, checking the conjunction of the pattern
   constraints the placement participates in (plus any extra
   properties);
3. when a pattern instance binds *several* legacy placements, the §7
   multi-legacy synthesis handles them jointly.

Example::

    from repro.integration import integrate

    report = integrate(
        architecture,
        {"follower": rear_shuttle_binary},
        labelers={"follower": railcab.rear_state_labeler},
    )
    assert report.ok
"""

from __future__ import annotations

from dataclasses import dataclass

from .automata.interaction import InteractionUniverse
from .errors import ModelError, SynthesisError
from .legacy.component import LegacyComponent
from .logic.formulas import Formula, conjunction
from .muml.architecture import Architecture
from .muml.verification import ArchitectureVerificationReport, verify_architecture
from .synthesis.initial import StateLabeler
from .synthesis.iterate import IntegrationSynthesizer, SynthesisResult, Verdict
from .synthesis.multi import MultiLegacySynthesizer, MultiSynthesisResult
from .synthesis.settings import SynthesisSettings, _UNSET, merge_legacy_settings

__all__ = ["IntegrationReport", "SynthesisSettings", "integrate"]


@dataclass(frozen=True)
class IntegrationReport:
    """Combined outcome of modeled-part verification and all syntheses."""

    architecture: ArchitectureVerificationReport
    placements: dict[str, SynthesisResult]
    joint: MultiSynthesisResult | None = None
    skipped_placements: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return (
            self.architecture.ok
            and all(result.verdict is Verdict.PROVEN for result in self.placements.values())
            and (self.joint is None or self.joint.verdict is Verdict.PROVEN)
            and not self.skipped_placements
        )

    def findings(self) -> list[str]:
        problems = list(self.architecture.findings())
        for name, result in sorted(self.placements.items()):
            if result.verdict is not Verdict.PROVEN:
                problems.append(
                    f"legacy placement {name!r}: {result.verdict.value}"
                    + (f" ({result.violation_kind})" if result.violation_kind else "")
                )
        if self.joint is not None and self.joint.verdict is not Verdict.PROVEN:
            problems.append(
                f"joint multi-legacy synthesis: {self.joint.verdict.value}"
                + (f" ({self.joint.violation_kind})" if self.joint.violation_kind else "")
            )
        for name in self.skipped_placements:
            problems.append(f"legacy placement {name!r}: no executable component supplied")
        return problems

    def require_ok(self) -> "IntegrationReport":
        """Raise ``SynthesisError`` with all findings unless ``ok``."""
        if self.ok:
            return self
        raise SynthesisError(
            "integration failed:\n" + "\n".join(f"  - {finding}" for finding in self.findings())
        )


def _instances_with_multiple_legacy(architecture: Architecture) -> bool:
    for instance in architecture.instances:
        legacy_count = sum(
            1
            for component, _ in instance.bindings.values()
            if component in architecture.legacy_placements
        )
        if legacy_count >= 2:
            return True
    return False


def integrate(
    architecture: Architecture,
    components: dict[str, LegacyComponent],
    *,
    labelers: dict[str, StateLabeler] | None = None,
    universes: dict[str, InteractionUniverse] | None = None,
    extra_properties: "dict[str, list[Formula]] | None" = None,
    system_properties: "list[Formula] | tuple[Formula, ...]" = (),
    settings: SynthesisSettings | None = None,
    max_iterations: int = _UNSET,  # type: ignore[assignment]
    counterexamples_per_iteration: int = _UNSET,  # type: ignore[assignment]
    parallelism: int | None = _UNSET,  # type: ignore[assignment]
) -> IntegrationReport:
    """Verify the modeled part, then integrate every legacy placement.

    ``components`` maps legacy placement names to their executable
    harnesses; placements without a component are reported (and fail
    the report) rather than silently skipped.  ``settings`` carries the
    loop-tuning knobs (:class:`SynthesisSettings`) shared by every
    placement — single and multi-legacy alike; the deprecated
    ``max_iterations`` / ``counterexamples_per_iteration`` /
    ``parallelism`` keywords forward into it.  The parallelism knobs
    shard the product re-exploration and the checker fixpoints (see
    :mod:`repro.automata.sharding`); verdicts and learned models are
    bit-identical for every value.
    """
    settings = merge_legacy_settings(
        settings,
        "integrate",
        max_iterations=max_iterations,
        counterexamples_per_iteration=counterexamples_per_iteration,
        parallelism=parallelism,
    )
    labelers = labelers or {}
    universes = universes or {}
    extra_properties = extra_properties or {}

    architecture_report = verify_architecture(
        architecture, system_properties=system_properties
    )

    placements: dict[str, SynthesisResult] = {}
    joint: MultiSynthesisResult | None = None
    skipped: list[str] = []

    if _instances_with_multiple_legacy(architecture):
        missing = sorted(architecture.legacy_placements - components.keys())
        if missing:
            skipped.extend(missing)
        else:
            names = sorted(architecture.legacy_placements)
            constraints: list[Formula] = []
            for instance in architecture.instances:
                constraints.append(instance.pattern.constraint)
            for name in names:
                constraints.extend(extra_properties.get(name, ()))
            try:
                modeled = architecture.compose_known()
            except ModelError:
                modeled = None  # purely legacy-vs-legacy architectures
            renamed = {
                name: components[name] for name in names
            }
            joint = MultiLegacySynthesizer(
                modeled,
                [renamed[name] for name in names],
                conjunction(list(dict.fromkeys(constraints))),
                labelers={
                    component.name: labelers[name]
                    for name, component in renamed.items()
                    if name in labelers
                },
                universes={
                    component.name: universes[name]
                    for name, component in renamed.items()
                    if name in universes
                },
                settings=settings,
            ).run()
        return IntegrationReport(
            architecture=architecture_report,
            placements=placements,
            joint=joint,
            skipped_placements=tuple(skipped),
        )

    for name in sorted(architecture.legacy_placements):
        if name not in components:
            skipped.append(name)
            continue
        extraction = architecture.context_for(name)
        component = components[name]
        if (
            component.inputs != extraction.legacy_inputs
            or component.outputs != extraction.legacy_outputs
        ):
            raise SynthesisError(
                f"component for placement {name!r} has interface "
                f"I={sorted(component.inputs)}/O={sorted(component.outputs)} but the "
                f"architecture expects I={sorted(extraction.legacy_inputs)}/"
                f"O={sorted(extraction.legacy_outputs)}"
            )
        properties = list(extraction.constraints) + list(extra_properties.get(name, ()))
        synthesizer = IntegrationSynthesizer(
            extraction.context,
            component,
            conjunction(properties),
            labeler=labelers.get(name),
            universe=universes.get(name),
            settings=settings,
            port=name,
        )
        placements[name] = synthesizer.run()

    return IntegrationReport(
        architecture=architecture_report,
        placements=placements,
        joint=joint,
        skipped_placements=tuple(skipped),
    )
