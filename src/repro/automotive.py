"""Second case study: AUTOSAR-style supplier integration (§1's motivation).

The paper's introduction motivates the whole scheme with automotive
software: standard interfaces (AUTOSAR) make supplier components
*technically* interoperable, "however, also a correct integration at
the application level is needed."  This module is that scenario as a
first-class Mechatronic UML model:

* the ``BrakeCoordination`` pattern between a ``coordinator`` role (the
  OEM's brake arbitration) and an ``accUnit`` role (the adaptive cruise
  control), with the hard real-time pattern constraint that an alerted
  vehicle is braking within three periods;
* an architecture with the coordinator modeled and the ACC unit as a
  legacy placement;
* executable supplier units: supplier A's correct implementation and
  supplier B's racy one (it re-arms without awaiting the brake
  acknowledgement — every signature matches, the application-level
  handshake does not).

Used by ``examples/automotive_acc.py``, the test suite, and the
benchmarks as the second full integration scenario next to RailCab.
"""

from __future__ import annotations

from .automata.automaton import Automaton
from .legacy.component import LegacyComponent
from .logic.formulas import Formula
from .logic.parser import parse
from .muml.architecture import Architecture
from .muml.component import Component, Port
from .muml.pattern import CoordinationPattern, Role

__all__ = [
    "ACC_INPUTS",
    "ACC_OUTPUTS",
    "BRAKE_CONSTRAINT",
    "coordinator_automaton",
    "acc_role_automaton",
    "brake_coordination_pattern",
    "acc_architecture",
    "acc_state_labeler",
    "supplier_a_acc",
    "supplier_b_acc",
]

#: Signals from the ACC unit's perspective.
ACC_INPUTS = frozenset({"distanceAlert", "brakeAck"})
ACC_OUTPUTS = frozenset({"decelRequest", "decelRelease"})

#: The hard real-time pattern constraint: an alerted vehicle must be
#: braking within three periods (radar alert → deceleration in effect).
BRAKE_CONSTRAINT: Formula = parse("AG (coordinator.alerted -> AF[1,3] coordinator.braking)")


def coordinator_automaton() -> Automaton:
    """The OEM's brake coordinator (the modeled context)."""
    return Automaton(
        inputs=ACC_OUTPUTS,
        outputs=ACC_INPUTS,
        transitions=[
            ("cruising", (), (), "cruising"),
            ("cruising", (), ("distanceAlert",), "alerted"),
            ("alerted", ("decelRequest",), (), "braking"),
            ("alerted", (), (), "alerted"),
            ("braking", (), ("brakeAck",), "decelerating"),
            ("decelerating", ("decelRelease",), (), "cruising"),
            ("decelerating", (), (), "decelerating"),
        ],
        initial=["cruising"],
        labels={
            "cruising": {"coordinator.cruising"},
            "alerted": {"coordinator.alerted"},
            "braking": {"coordinator.braking"},
            "decelerating": {"coordinator.braking"},
        },
        name="brakeCoordinator",
    )


def acc_role_automaton() -> Automaton:
    """The ACC *role* protocol: what any supplier unit must refine."""
    return Automaton(
        inputs=ACC_INPUTS,
        outputs=ACC_OUTPUTS,
        transitions=[
            ("armed", (), (), "armed"),
            ("armed", ("distanceAlert",), (), "reacting"),
            ("reacting", (), ("decelRequest",), "requested"),
            ("requested", ("brakeAck",), (), "decelerating"),
            ("requested", (), (), "requested"),
            # Release is urgent: a deterministic unit cannot both dally
            # and release, and the protocol wants the release prompt.
            ("decelerating", (), ("decelRelease",), "armed"),
        ],
        initial=["armed"],
        labels={
            "armed": {"accUnit.armed"},
            "reacting": {"accUnit.engaging"},
            "requested": {"accUnit.engaging"},
            "decelerating": {"accUnit.engaged"},
        },
        name="accRole",
    )


def brake_coordination_pattern() -> CoordinationPattern:
    """The BrakeCoordination pattern: coordinator × ACC unit."""
    coordinator = Role(
        "coordinator",
        coordinator_automaton(),
        invariant=parse("AG (coordinator.braking -> not coordinator.cruising)"),
    )
    acc = Role("accUnit", acc_role_automaton())
    return CoordinationPattern(
        "BrakeCoordination",
        [coordinator, acc],
        constraint=BRAKE_CONSTRAINT,
    )


def acc_architecture() -> Architecture:
    """Coordinator modeled, ACC unit as a legacy placement."""
    pattern = brake_coordination_pattern()
    port = Port("brakes", pattern.role("coordinator"), coordinator_automaton())
    architecture = Architecture("vehicle")
    architecture.add_component(Component("oem", [port]))
    architecture.add_legacy("acc")
    architecture.instantiate(
        pattern,
        {"coordinator": ("oem", "brakes"), "accUnit": ("acc", None)},
        name="brakeCoordination",
    )
    return architecture


def acc_state_labeler(state) -> frozenset[str]:
    """Monitored ACC states → propositions (for learned models)."""
    return frozenset({f"accUnit.{state}"})


def supplier_a_acc() -> LegacyComponent:
    """Supplier A: the correct unit (refines the ACC role)."""
    hidden = Automaton(
        inputs=ACC_INPUTS,
        outputs=ACC_OUTPUTS,
        transitions=[
            ("armed", (), (), "armed"),
            ("armed", ("distanceAlert",), (), "reacting"),
            ("reacting", (), ("decelRequest",), "requested"),
            ("requested", ("brakeAck",), (), "decelerating"),
            ("requested", (), (), "requested"),
            ("decelerating", (), ("decelRelease",), "armed"),
        ],
        initial=["armed"],
        name="ACC(supplier-A)",
    )
    return LegacyComponent(hidden, name="acc")


def supplier_b_acc() -> LegacyComponent:
    """Supplier B: the racy unit (re-arms mid-handshake).

    Interface-compatible with the role, but it never consumes the brake
    acknowledgement: once the coordinator is mid-handshake the unit is
    deaf and the composition jams.
    """
    hidden = Automaton(
        inputs=ACC_INPUTS,
        outputs=ACC_OUTPUTS,
        transitions=[
            ("armed", (), (), "armed"),
            ("armed", ("distanceAlert",), (), "reacting"),
            ("reacting", (), ("decelRequest",), "armed"),
        ],
        initial=["armed"],
        name="ACC(supplier-B)",
    )
    return LegacyComponent(hidden, name="acc")
