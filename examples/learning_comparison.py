#!/usr/bin/env python3
"""Context-guided synthesis vs. whole-machine learning (§6).

The paper's key quantitative claim: because the context restricts the
interaction, the integration can be decided after learning only the
*context-relevant* part of the legacy component — while L*-style
regular inference (and black-box checking built on it) must identify
the whole machine, paying membership queries per state and equivalence
queries that are exponential to realize by conformance testing.

This example runs both on the same "overbuilt" rear shuttles — correct
convoy protocol plus a diagnostic mode of growing size that the
DistanceCoordination context can never reach — and prints the cost
table.

Run with::

    python examples/learning_comparison.py
"""

from repro import railcab
from repro.baselines import (
    BlackBoxChecker,
    LStarLearner,
    MembershipOracle,
    PerfectEquivalenceOracle,
    vasilevskii_bound,
)
from repro.legacy import interface_of
from repro.synthesis import IntegrationSynthesizer


def run_synthesis(component):
    synthesizer = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
    )
    return synthesizer.run()


def run_lstar(component):
    universe = interface_of(component).universe()
    membership = MembershipOracle(component)
    equivalence = PerfectEquivalenceOracle(component._hidden, universe)
    learner = LStarLearner(membership, universe, equivalence)
    dfa = learner.learn()
    return dfa, learner.statistics


def run_bbc(component):
    universe = interface_of(component).universe()
    checker = BlackBoxChecker(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        universe=universe,
        equivalence=PerfectEquivalenceOracle(component._hidden, universe),
        labeler=railcab.rear_state_labeler,
    )
    return checker.run()


def main() -> None:
    print(
        f"{'diag states':>11} {'|M_r|':>6} | {'ours: iter':>10} {'tests':>6} "
        f"{'learned':>8} | {'L*: member':>10} {'equiv':>6} | {'BBC: member':>11} "
        f"{'conf. bound':>12}"
    )
    print("-" * 100)
    for extra in (2, 5, 10, 20):
        component = railcab.overbuilt_rear_shuttle(extra_states=extra)
        total_states = component.state_bound

        ours = run_synthesis(railcab.overbuilt_rear_shuttle(extra_states=extra))
        assert ours.proven, "the overbuilt shuttle is correct: expected a proof"

        dfa, stats = run_lstar(railcab.overbuilt_rear_shuttle(extra_states=extra))
        bbc = run_bbc(railcab.overbuilt_rear_shuttle(extra_states=extra))

        universe_size = len(interface_of(component).universe())
        bound = vasilevskii_bound(dfa.size, dfa.size + 1, universe_size)
        print(
            f"{extra:>11} {total_states:>6} | {ours.iteration_count:>10} "
            f"{ours.total_tests:>6} {ours.learned_states:>8} | "
            f"{stats.membership_queries:>10} {stats.equivalence_queries:>6} | "
            f"{bbc.membership_queries:>11} {bound:>12}"
        )
    print()
    print("ours      : verify → test → learn loop (proof via Lemma 5, no equivalence query)")
    print("L*        : full-machine regular inference with a perfect equivalence oracle")
    print("BBC       : black-box checking (needs equivalence once the property holds)")
    print("conf bound: Vasilevskii test-suite length if the equivalence query were")
    print("            realised by W-method conformance testing with bound |M|+1")


if __name__ == "__main__":
    main()
