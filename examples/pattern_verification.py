#!/usr/bin/env python3
"""Compositional pattern verification in Mechatronic UML ([24], §1).

Before any legacy component enters the picture, Mechatronic UML
verifies the coordination patterns themselves: role invariants against
role behavior, and the pattern constraint plus deadlock freedom against
the composed roles.  This example:

1. verifies the DistanceCoordination pattern of Figure 1;
2. breaks the front role (it forgets to tell the rear shuttle that the
   convoy started) and shows the verification catching the deadlock;
3. builds a shuttle component whose ports refine the pattern roles and
   checks port conformance (refinement per Definition 4);
4. shows a connector with QoS: a unit-delay channel between the roles.

Run with::

    python examples/pattern_verification.py
"""

from repro import railcab
from repro.automata import Automaton
from repro.logic import parse
from repro.muml import Component, CoordinationPattern, Port, Role, unit_delay_channel
from repro.rtsc import Statechart, unfold


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def verify_distance_coordination() -> None:
    banner("1. DistanceCoordination pattern (Figure 1)")
    pattern = railcab.distance_coordination_pattern()
    result = pattern.verify()
    print(f"pattern constraint {pattern.constraint}: {result.constraint_result.holds}")
    print(f"deadlock freedom: {result.deadlock_result.holds}")
    for role, check in result.invariant_results.items():
        print(f"role invariant of {role}: {check.holds}")
    print(f"composed pattern: {result.composition}")
    assert result.ok


def verify_broken_pattern() -> None:
    banner("2. A broken front role: agrees to the convoy but forgets it")
    chart = Statechart(
        "frontRole",
        inputs=railcab.REAR_TO_FRONT,
        outputs=railcab.FRONT_TO_REAR,
    )
    no_convoy = chart.location("noConvoy", initial=True)
    default = chart.location("default", parent=no_convoy, initial=True)
    answer = chart.location("answer", parent=no_convoy)
    chart.transition(default, answer, trigger="convoyProposal")
    chart.transition(answer, default, raised="convoyProposalRejected")
    # The defect: it sends startConvoy but stays in noConvoy mode,
    # remaining free to brake with full force.
    chart.transition(answer, default, raised="startConvoy")
    broken_front = Role("frontRole", unfold(chart))
    rear = Role("rearRole", railcab.rear_role_automaton())
    pattern = CoordinationPattern(
        "DistanceCoordination(broken)",
        [broken_front, rear],
        constraint=railcab.PATTERN_CONSTRAINT,
    )
    result = pattern.verify()
    print(f"pattern constraint: {result.constraint_result.holds}")
    print(f"deadlock freedom: {result.deadlock_result.holds}")
    if result.counterexample_run is not None:
        print("witness run:")
        print(f"  {result.counterexample_run}")
    assert not result.ok


def check_component_conformance() -> None:
    banner("3. Shuttle component: port refinement (Definition 4)")
    pattern = railcab.distance_coordination_pattern()
    rear_role = pattern.role("rearRole")

    conforming_port = Port("rearRole", rear_role, railcab.rear_role_automaton())
    shuttle = Component("shuttle", [conforming_port])
    for name, result in shuttle.check_conformance().items():
        print(
            f"port {name}: refines role = {result.refines_role}, "
            f"invariant respected = {result.respects_invariant}"
        )
        assert result.ok

    # A port that adds behavior the role forbids: proposing a convoy
    # and *immediately* driving in convoy mode (the faulty shuttle).
    faulty_behavior = Automaton(
        inputs=railcab.FRONT_TO_REAR,
        outputs=railcab.REAR_TO_FRONT,
        transitions=[
            ("noConvoy", (), ("convoyProposal",), "convoy"),
            ("convoy", ("convoyProposalRejected",), (), "convoy"),
            ("convoy", (), (), "convoy"),
        ],
        initial=["noConvoy"],
        labels={
            "noConvoy": {"rearRole.noConvoy", "rearRole.fullBraking"},
            "convoy": {"rearRole.convoy", "rearRole.reducedBraking"},
        },
        name="faultyPort",
    )
    faulty_port = Port("rearRole", rear_role, faulty_behavior)
    check = faulty_port.check_conformance(
        contract_propositions=railcab.PATTERN_CONSTRAINT.propositions()
    )
    print(f"faulty port refines role: {check.refines_role}")
    if check.refinement_witness is not None:
        print(f"refinement violation witness: {check.refinement_witness}")
    assert not check.refines_role


def connector_with_qos() -> None:
    banner("4. Roles over a unit-delay connector")
    channel = unit_delay_channel(["job"], name="wire")
    producer = Automaton(
        inputs=set(),
        outputs={"job"},
        transitions=[
            ("make", (), ("job",), "cool"),
            ("cool", (), (), "make"),
        ],
        initial=["make"],
        labels={"make": {"producer.make"}, "cool": {"producer.cool"}},
        name="producer",
    )
    consumer = Automaton(
        inputs={"job~"},
        outputs=set(),
        transitions=[
            ("wait", ("job~",), (), "work"),
            ("wait", (), (), "wait"),
            ("work", (), (), "wait"),
        ],
        initial=["wait"],
        labels={"wait": {"consumer.wait"}, "work": {"consumer.work"}},
        name="consumer",
    )
    pattern = CoordinationPattern(
        "Produce",
        [Role("producer", producer), Role("consumer", consumer)],
        constraint=parse("AG (producer.make -> AF[1,4] consumer.work)"),
        connector=channel,
    )
    result = pattern.verify()
    print(f"composed: {result.composition}")
    print(f"bounded-delivery constraint: {result.constraint_result.holds}")
    print(f"deadlock freedom: {result.deadlock_result.holds}")
    assert result.ok


def main() -> None:
    verify_distance_coordination()
    verify_broken_pattern()
    check_component_conformance()
    connector_with_qos()


if __name__ == "__main__":
    main()
