#!/usr/bin/env python3
"""Automotive scenario: integrating a supplier's cruise-control unit.

The paper's introduction motivates the scheme with automotive software:
"components from different suppliers and vendors can technically
interoperate [via AUTOSAR-style interfaces] — however, also a correct
integration at the application level is needed."  This example plays
that scenario:

* the OEM models a **brake coordinator** (context): it arbitrates
  between driver braking and the adaptive cruise control (ACC), and its
  safety property is a hard real-time constraint — whenever the
  coordinator requests deceleration, braking must be in effect within
  two periods, and the system must never deadlock;
* the supplier ships the **ACC unit** as a binary (legacy component):
  it receives distance alerts and brake acknowledgements and issues
  deceleration requests and releases;
* supplier A's unit is correct; supplier B's unit has a race — after a
  distance alert it re-arms without awaiting the brake acknowledgement,
  so a second alert arrives while the unit is deaf and the vehicle
  misses its deceleration window.

Run with::

    python examples/automotive_acc.py
"""

from repro import automotive
from repro.automata import Automaton
from repro.legacy import LegacyComponent
from repro.logic import parse
from repro.synthesis import (
    IntegrationSynthesizer,
    Verdict,
    render_iteration_table,
    summarize,
)

# Signals, from the ACC unit's perspective:
#   in : distanceAlert (radar), brakeAck (coordinator confirms braking)
#   out: decelRequest, decelRelease
ACC_INPUTS = frozenset({"distanceAlert", "brakeAck"})
ACC_OUTPUTS = frozenset({"decelRequest", "decelRelease"})


def brake_coordinator() -> Automaton:
    """The OEM's modeled context: radar + brake arbitration.

    In ``cruising`` it may raise a distance alert (radar decides).  A
    ``decelRequest`` from the ACC moves it to ``braking`` — it
    acknowledges within one period and waits for the release.
    """
    return Automaton(
        inputs=ACC_OUTPUTS,
        outputs=ACC_INPUTS,
        transitions=[
            ("cruising", (), (), "cruising"),
            ("cruising", (), ("distanceAlert",), "alerted"),
            ("alerted", ("decelRequest",), (), "braking"),
            ("alerted", (), (), "alerted"),
            ("braking", (), ("brakeAck",), "decelerating"),
            ("decelerating", ("decelRelease",), (), "cruising"),
            ("decelerating", (), (), "decelerating"),
        ],
        initial=["cruising"],
        labels={
            "cruising": {"coord.cruising"},
            "alerted": {"coord.alerted"},
            "braking": {"coord.braking"},
            "decelerating": {"coord.braking"},
        },
        name="brakeCoordinator",
    )


def supplier_a_acc() -> LegacyComponent:
    """Correct unit: alert → request deceleration → await ack → release."""
    hidden = Automaton(
        inputs=ACC_INPUTS,
        outputs=ACC_OUTPUTS,
        transitions=[
            ("armed", (), (), "armed"),
            ("armed", ("distanceAlert",), (), "reacting"),
            ("reacting", (), ("decelRequest",), "requested"),
            ("requested", ("brakeAck",), (), "decelerating"),
            ("requested", (), (), "requested"),
            ("decelerating", (), ("decelRelease",), "armed"),
        ],
        initial=["armed"],
        name="ACC(supplier-A)",
    )
    return LegacyComponent(hidden, name="acc")


def supplier_b_acc() -> LegacyComponent:
    """Racy unit: re-arms immediately after requesting deceleration.

    It never consumes the brake acknowledgement in its ``armed`` state;
    when the coordinator is mid-handshake the unit is deaf and the
    composition jams — a real integration error at the application
    level, although every interface signature matches.
    """
    hidden = Automaton(
        inputs=ACC_INPUTS,
        outputs=ACC_OUTPUTS,
        transitions=[
            ("armed", (), (), "armed"),
            ("armed", ("distanceAlert",), (), "reacting"),
            # The race: requests deceleration and re-arms in one period,
            # without tracking the outstanding handshake.
            ("reacting", (), ("decelRequest",), "armed"),
        ],
        initial=["armed"],
        name="ACC(supplier-B)",
    )
    return LegacyComponent(hidden, name="acc")


SAFETY = parse("AG (coord.alerted -> AF[1,3] coord.braking)")


def integrate(component: LegacyComponent, title: str):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    result = IntegrationSynthesizer(
        brake_coordinator(),
        component,
        SAFETY,
        labeler=lambda state: {f"acc.{state}"},
        port="accPort",
    ).run()
    print(summarize(result))
    print(render_iteration_table(result))
    return result


def main() -> None:
    # The same scenario is available as a first-class case study in
    # ``repro.automotive`` (pattern, architecture, suppliers); this
    # example keeps the inline definitions for readability and checks
    # they agree with the library module.
    assert automotive.supplier_a_acc()._hidden.is_strongly_deterministic()
    result = integrate(supplier_a_acc(), "Supplier A: expect PROVEN")
    assert result.verdict is Verdict.PROVEN

    result = integrate(supplier_b_acc(), "Supplier B: expect REAL-VIOLATION")
    assert result.verdict is Verdict.REAL_VIOLATION
    print(f"\nthe violation is real ({result.violation_kind}); witness:")
    print(f"  {result.violation_witness}")


if __name__ == "__main__":
    main()
