#!/usr/bin/env python3
"""Re-hosting a legacy component: learn → verify → regenerate.

A workflow the paper's machinery enables end to end: when a legacy
binary must be retired (unsupported toolchain, dead hardware), the
integration loop's *learned model* — which is exactly the
context-relevant behavior, verified against the architecture's
constraints — can be fed to Mechatronic UML's code generation step
("code generation … ensures that the constraints still hold for the
code", §1) to produce a drop-in replacement controller:

1. run the synthesis against the old black box → proof + learned model;
2. generate a Python controller from the learned model
   (``repro.codegen``), i.e. readable source with a transition table;
3. wrap the *generated artifact* back into the harness and run the full
   synthesis against it — the replacement is proven correct in the same
   context, and a model-based regression suite passes.

Run with::

    python examples/legacy_rehosting.py
"""

from repro import railcab
from repro.automata import Automaton
from repro.codegen import compile_controller, generate_python
from repro.legacy import LegacyComponent
from repro.synthesis import IntegrationSynthesizer, Verdict, summarize
from repro.testing import generate_suite, run_suite


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def wrap_generated(automaton: Automaton) -> LegacyComponent:
    """Build a harness around the *generated* controller artifact."""
    controller = compile_controller(automaton, class_name="RearShuttleController")()
    transitions = [
        (state, tuple(sorted(inputs)), tuple(sorted(outputs)), target)
        for (state, inputs), (outputs, target) in controller.TRANSITIONS.items()
    ]
    hidden = Automaton(
        inputs=controller.INPUTS,
        outputs=controller.OUTPUTS,
        transitions=transitions,
        initial=[controller.INITIAL],
        name="rearShuttle(regenerated)",
    )
    return LegacyComponent(hidden, name="rearShuttle")


def main() -> None:
    banner("1. Learn and verify the old black box")
    old_binary = railcab.correct_rear_shuttle(convoy_ticks=1)
    result = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        old_binary,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
    ).run()
    assert result.verdict is Verdict.PROVEN
    print(summarize(result))

    banner("2. Generate the replacement controller")
    source = generate_python(
        result.final_model.automaton.replace(name="rearShuttleLearned"),
        class_name="RearShuttleController",
    )
    print(source.splitlines()[0])
    print(f"... {len(source.splitlines())} lines of generated Python ...")
    table_lines = [line for line in source.splitlines() if "frozenset" in line]
    print(f"transition table entries: {len(table_lines) - 2}")

    banner("3. Prove the regenerated controller in the same context")
    replacement = wrap_generated(result.final_model.automaton)
    reproof = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        replacement,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
    ).run()
    assert reproof.verdict is Verdict.PROVEN
    print(summarize(reproof))

    banner("4. Regression suite from the learned model")
    suite = generate_suite(result.final_model, name="rear-shuttle")
    report = run_suite(wrap_generated(result.final_model.automaton), suite, name="rear-shuttle")
    print(report.summary())
    assert report.ok


if __name__ == "__main__":
    main()
