#!/usr/bin/env python3
"""The paper's running example: RailCab convoys (§1, Figures 4–7).

Reproduces the complete narrative of the paper:

1. the initial behavior synthesis (Figure 4): trivial model + closure;
2. the first verification counterexample (Listing 1.1 shape) and the
   monitored traces of its test (Listings 1.2/1.3);
3. the faulty shuttle exposed as a *real conflict* after two
   iterations, with the violation entirely in the synthesized part
   (Figure 6 + Listing 1.4);
4. the correct shuttle *proven* without learning irrelevant behavior
   (Figure 7 + Listing 1.5).

Run with::

    python examples/railcab_convoy.py
"""

from repro import railcab
from repro.legacy import interface_of
from repro.synthesis import (
    IntegrationSynthesizer,
    initial_abstraction,
    initial_model,
    render_counterexample_listing,
    render_iteration_table,
    summarize,
)
from repro.testing import render_events


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def show_initial_synthesis() -> None:
    banner("Initial behavior synthesis (Figure 4)")
    shuttle = railcab.correct_rear_shuttle()
    interface = interface_of(shuttle)
    model = initial_model(interface, labeler=railcab.rear_state_labeler)
    print(f"M_l^0: {model}")
    closure = initial_abstraction(interface, labeler=railcab.rear_state_labeler)
    print(f"M_a^0 = chaos(M_l^0): {closure}")
    print("closure states:", sorted(map(repr, closure.states)))


def run_shuttle(component, title: str) -> None:
    banner(title)
    synthesizer = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
    )
    result = synthesizer.run()
    print(summarize(result))
    print()
    print(render_iteration_table(result))

    interesting = next(
        (
            record
            for record in result.iterations
            if record.counterexample is not None and len(record.counterexample) > 0
        ),
        result.iterations[0],
    )
    if interesting.counterexample is not None:
        print(
            f"\nVerification counterexample of iteration {interesting.index} "
            "(Listing 1.1 shape):"
        )
        print(
            render_counterexample_listing(
                interesting.counterexample,
                legacy_inputs=railcab.FRONT_TO_REAR,
                legacy_outputs=railcab.REAR_TO_FRONT,
            )
        )
    if interesting.observed_run is not None:
        print("\nMonitored events of the replayed test (Listing 1.3 shape):")
        from repro.testing import events_for_run

        print(render_events(events_for_run(interesting.observed_run, port="rearRole")))

    if result.violation_witness is not None:
        print("\nViolation witness (Listing 1.4 shape):")
        print(
            render_counterexample_listing(
                result.violation_witness,
                legacy_inputs=railcab.FRONT_TO_REAR,
                legacy_outputs=railcab.REAR_TO_FRONT,
            )
        )
    else:
        print("\nFinal learned behavior (Figure 7 shape):")
        for transition in sorted(result.final_model.transitions, key=repr):
            print(f"  {transition}")


def main() -> None:
    show_initial_synthesis()
    run_shuttle(
        railcab.faulty_rear_shuttle(),
        "Faulty shuttle: conflict detected in the synthesized part (Fig. 6)",
    )
    run_shuttle(
        railcab.correct_rear_shuttle(convoy_ticks=1),
        "Correct shuttle: integration proven (Fig. 7)",
    )


if __name__ == "__main__":
    main()
