#!/usr/bin/env python3
"""Quickstart: verify the integration of a tiny legacy server.

A modeled client expects a ping/pong protocol; the legacy server is an
executable black box.  We run the paper's verify → test → learn loop
twice — once against a conforming server (the integration is *proven*)
and once against a server that stops answering after two pongs (a real
deadlock is *pin-pointed*).

Run with::

    python examples/quickstart.py
"""

from repro.automata import Automaton
from repro.legacy import LegacyComponent
from repro.logic import parse
from repro.synthesis import IntegrationSynthesizer, render_iteration_table, summarize


def client() -> Automaton:
    """The context: sends ping, waits for pong, repeats (or idles)."""
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {"client.idle"}, "waiting": {"client.waiting"}},
        name="client",
    )


def good_server() -> LegacyComponent:
    """Always answers the next period with a pong."""
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server(good)",
    )
    return LegacyComponent(hidden, name="server")


def tired_server() -> LegacyComponent:
    """Answers two pings, then ignores everything — a real deadlock."""
    transitions = [
        ("ready0", ("ping",), (), "busy0"),
        ("ready0", (), (), "ready0"),
        ("busy0", (), ("pong",), "ready1"),
        ("ready1", ("ping",), (), "busy1"),
        ("ready1", (), (), "ready1"),
        ("busy1", (), ("pong",), "tired"),
        # "tired" refuses pings and does not even idle: the component
        # halts (e.g. a crashed thread) — no reaction to anything.
    ]
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=transitions,
        initial=["ready0"],
        name="server(tired)",
    )
    return LegacyComponent(hidden, name="server")


def integrate(component: LegacyComponent, title: str) -> None:
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))
    synthesizer = IntegrationSynthesizer(
        client(),
        component,
        parse("AG (client.waiting -> AF[1,3] client.idle)"),
        labeler=lambda state: {f"server.{state}"},
        port="serverPort",
    )
    result = synthesizer.run()
    print(summarize(result))
    print(render_iteration_table(result))
    print()


def main() -> None:
    integrate(good_server(), "good server: expect PROVEN")
    integrate(tired_server(), "tired server: expect REAL-VIOLATION")


if __name__ == "__main__":
    main()
