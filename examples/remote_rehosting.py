#!/usr/bin/env python3
"""Out-of-process legacy components: supervision with real deadlines.

Everything else in the repo executes the legacy component *in process*
— faithful to the paper's observations, but a polite fiction about its
failure modes: a real legacy binary can crash, hang, or babble, and an
in-process harness can at best abandon the thread it hung.  This demo
runs the RailCab rear shuttle behind the supervised subprocess ABI
(``repro.legacy.remote``, see ``docs/remote.md``):

1. re-host the component in its own process and prove the convoy
   property — verdicts and iteration records are bit-identical to the
   in-process run;
2. let a seeded fault profile hang the component *inside the host
   process* and watch the per-step deadline SIGKILL it for real;
3. SIGKILL the host mid-synthesis (``kill -9`` chaos) — the loop
   recovers through the crash-fault path and still proves the
   property, and no murdered process ever manufactures a violation;
4. lease warm instances from a pre-forked pool.

Run with::

    python examples/remote_rehosting.py
"""

import dataclasses
import os
import signal

from repro import railcab
from repro.errors import TestTimeoutError
from repro.legacy.remote import InstancePool, RemotePolicy, rehost
from repro.obs import CallbackProgressSink
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict, summarize
from repro.testing import FaultKind, FaultProfile


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def convoy_synthesizer(settings=None) -> IntegrationSynthesizer:
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        settings=settings,
        port="rearRole",
    )


def main() -> None:
    banner("1. Prove the convoy property against an out-of-process component")
    in_process = convoy_synthesizer().run()
    remote_loop = convoy_synthesizer(SynthesisSettings(remote=True))
    result = remote_loop.run()
    assert result.verdict is Verdict.PROVEN
    print(summarize(result))
    stats = remote_loop.component.remote_stats
    print(f"host lifecycle: {stats}")
    assert result.iteration_count == in_process.iteration_count
    assert all(r == s for r, s in zip(result.iterations, in_process.iterations))
    print("iteration records: bit-identical to the in-process run")

    banner("2. A real deadline: a hung host is SIGKILL-ed, not abandoned")
    hang = dataclasses.replace(
        FaultProfile.single(FaultKind.HANG, 1.0, seed=7), hang_seconds=60.0
    )
    with rehost(
        railcab.correct_rear_shuttle(convoy_ticks=1),
        RemotePolicy(step_deadline=0.5),
        fault_profile=hang,
    ) as component:
        with component.inject_faults():
            try:
                component.step(frozenset())
            except TestTimeoutError as error:
                print(f"caught: {error}")
        assert not component.alive
        component.reset()  # lazy respawn on the next use
        print(f"after respawn: {component!r}")
        print(f"host lifecycle: {component.remote_stats}")

    banner("3. kill -9 mid-synthesis: sound recovery, never a false verdict")
    state: dict = {}

    def killer(event):
        if event.name == "iteration.started" and event.payload.get("iteration") == 2:
            if "done" not in state:
                state["done"] = True
                pid = state["synth"].component.pid
                print(f"SIGKILL host pid {pid} at iteration 2")
                os.kill(pid, signal.SIGKILL)

    chaos_loop = convoy_synthesizer(
        SynthesisSettings(remote=True, progress=CallbackProgressSink(killer))
    )
    state["synth"] = chaos_loop
    survived = chaos_loop.run()
    assert survived.verdict is not Verdict.REAL_VIOLATION
    assert survived.verdict is Verdict.PROVEN  # the component IS correct
    print(summarize(survived))
    print(f"host lifecycle: {chaos_loop.component.remote_stats}")

    banner("4. Warm instances from the pre-forked pool")
    with InstancePool(railcab.correct_rear_shuttle(convoy_ticks=1), size=2) as pool:
        for lease in range(3):
            with pool.lease() as instance:
                outcome = instance.step(frozenset())
                print(f"lease {lease}: pid {instance.pid} stepped -> {sorted(outcome.outputs)}")
        print(f"pool gauges: {pool.stats}")
        assert pool.stats["pool_spawns"] == 2  # every lease reused a warm host


if __name__ == "__main__":
    main()
