#!/usr/bin/env python3
"""Two legacy shuttles at once: the paper's §7 extension, running.

"The approach can … be extended to multiple legacy components, by using
the parallel combination of multiple behavioral models.  The iterative
synthesis will then improve all these models in parallel."  The paper
leaves this as future work; here it runs:

1. both convoy controllers are third-party black boxes — the
   integration is *proven* while both behavioral models are learned in
   parallel, each only as far as their mutual interaction requires;
2. a forgetful front shuttle (sends ``startConvoy`` but stays in
   no-convoy mode) is exposed as a *real* violation of the pattern
   constraint that only exists in the interplay of the two components;
3. a halting front shuttle produces a *real deadlock*, confirmed by the
   generalized probing step.

Run with::

    python examples/multi_legacy_convoy.py
"""

from repro import railcab
from repro.synthesis import MultiLegacySynthesizer, Verdict

LABELERS = {
    "frontShuttle": railcab.front_state_labeler,
    "rearShuttle": railcab.rear_state_labeler,
}


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def integrate(front, rear, title: str):
    banner(title)
    synthesizer = MultiLegacySynthesizer(
        None,  # no modeled context: the legacy components face each other
        [front, rear],
        railcab.PATTERN_CONSTRAINT,
        labelers=LABELERS,
    )
    result = synthesizer.run()
    print(f"verdict: {result.verdict.value}")
    print(f"iterations: {result.iteration_count}, tests: {result.total_tests}")
    for name, model in sorted(result.final_models.items()):
        print(
            f"  learned for {name}: {len(model.states)} states, "
            f"{len(model.transitions)} transitions, {len(model.refusals)} refusals"
        )
    if result.violation_witness is not None:
        print(f"violation kind: {result.violation_kind}")
        print(f"witness: {result.violation_witness}")
    return result


def main() -> None:
    result = integrate(
        railcab.correct_front_shuttle(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        "Two correct legacy shuttles: expect PROVEN",
    )
    assert result.verdict is Verdict.PROVEN

    result = integrate(
        railcab.forgetful_front_shuttle(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        "Forgetful front shuttle: expect REAL-VIOLATION (property)",
    )
    assert result.verdict is Verdict.REAL_VIOLATION

    from repro.automata import Automaton
    from repro.legacy import LegacyComponent

    halting_front = LegacyComponent(
        Automaton(
            inputs=railcab.REAR_TO_FRONT,
            outputs=railcab.FRONT_TO_REAR,
            transitions=[
                ("start", (), (), "start"),
                ("start", ("convoyProposal",), (), "halted"),
            ],
            initial=["start"],
            name="frontShuttle(halting)",
        ),
        name="frontShuttle",
    )
    result = integrate(
        halting_front,
        railcab.correct_rear_shuttle(convoy_ticks=1),
        "Halting front shuttle: expect REAL-VIOLATION (deadlock)",
    )
    assert result.verdict is Verdict.REAL_VIOLATION
    assert result.violation_kind == "deadlock"


if __name__ == "__main__":
    main()
