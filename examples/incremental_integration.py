#!/usr/bin/env python3
"""Incremental integration: learned knowledge survives across runs.

Integration is not a one-shot activity: properties get added, contexts
get revised, legacy components get patched.  This example shows the
library's workflow support around the paper's scheme:

1. a cold run learns the rear shuttle's context-relevant behavior and
   proves the distance constraint;
2. the learned model is *persisted* to JSON;
3. a second property (convoy agreement) is proven from the warm-started
   model with **zero** additional test executions;
4. after a (simulated) component update, the stale knowledge is
   *detected and rejected* — the validation re-executes the model
   against the live component before trusting it — and a fresh run
   converges on the new behavior.

Run with::

    python examples/incremental_integration.py
"""

import tempfile
from pathlib import Path

from repro import railcab
from repro.errors import SynthesisError
from repro.logic import parse
from repro.persistence import load_model, save_model
from repro.synthesis import IntegrationSynthesizer, Verdict, summarize

AGREEMENT = parse("AG (rearRole.convoy -> frontRole.convoy)")


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    context = railcab.front_role_automaton()

    banner("1. Cold run: prove the distance constraint")
    cold = IntegrationSynthesizer(
        context,
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
    ).run()
    assert cold.verdict is Verdict.PROVEN
    print(summarize(cold))

    banner("2. Persist the learned model")
    store = Path(tempfile.mkdtemp()) / "rear-shuttle.json"
    save_model(cold.final_model, store)
    print(f"saved {cold.final_model!r}\n  -> {store}")

    banner("3. Warm run: a NEW property, zero new tests")
    warm = IntegrationSynthesizer(
        context,
        railcab.correct_rear_shuttle(convoy_ticks=1),
        AGREEMENT,
        labeler=railcab.rear_state_labeler,
        initial_knowledge=load_model(store),
    ).run()
    assert warm.verdict is Verdict.PROVEN
    print(summarize(warm))
    print(f"tests executed on the warm run: {warm.total_tests}")

    banner("4. Component update: stale knowledge is rejected")
    updated_component = railcab.correct_rear_shuttle(convoy_ticks=3)  # new firmware
    try:
        IntegrationSynthesizer(
            context,
            updated_component,
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            initial_knowledge=load_model(store),
        )
    except SynthesisError as error:
        print(f"rejected as expected: {error}")
    else:
        raise AssertionError("stale knowledge was not detected")

    fresh = IntegrationSynthesizer(
        context,
        railcab.correct_rear_shuttle(convoy_ticks=3),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
    ).run()
    assert fresh.verdict is Verdict.PROVEN
    print(f"\nfresh run against the updated component: {fresh.verdict.value} "
          f"({fresh.iteration_count} iterations)")


if __name__ == "__main__":
    main()
