#!/usr/bin/env python3
"""Run the randomized conformance campaign (ROADMAP item 4).

Generates ``--count`` seeded scenarios with
:func:`repro.testing.generate_scenario`, executes each through
``integrate()`` across the configuration matrix (incremental on/off,
dense on/off, sharded K=4, mild fault injection), and asserts verdict
agreement with full-composition model checking — plus, on a subsample,
with the §6 L*/BBC baselines::

    PYTHONPATH=src python tools/campaign.py --count 1000 --report out.json
    PYTHONPATH=src python tools/campaign.py --count 50 --profile tiny   # PR smoke
    PYTHONPATH=src python tools/campaign.py --count 200 --matrix full   # 16 configs

Any disagreement is minimized by the delta-debugging shrinker and
written as a repr-stable fixture into ``--fixtures-dir`` (default
``tests/fixtures/scenarios/``, filename ``shrunk-<fingerprint>.json``)
so it can be committed as a regression test; the exit status is the
number of failing scenarios (0 = campaign passed).  Baseline BBC false
alarms (``violation`` against a property-only truth of ``proven``) are
*explained* — BBC lacks quiescence observations, see
``docs/conformance.md`` — and are counted separately, not as failures.

Every scenario is independently reproducible from its seed::

    PYTHONPATH=src python tools/campaign.py --only-seed 12 --baselines-every 1
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ModelError, SynthesisError  # noqa: E402
from repro.testing import (  # noqa: E402
    build_scenario,
    default_matrix,
    evaluate_scenario,
    full_matrix,
    generate_scenario,
    shrink_scenario,
    spec_fingerprint,
)
from repro.obs import BLACKBOX_ENV, FlightRecorder  # noqa: E402
from repro.testing.shrink import disagreement_predicate  # noqa: E402


def dump_blackbox(directory, scenario, evaluation, record) -> pathlib.Path | None:
    """Dump one per-seed blackbox for a disagreeing scenario.

    The campaign has no single loop to arm a recorder inside (each
    scenario runs the whole config matrix), so the blackbox here is a
    post-hoc anomaly dump: the scenario's identity, the disagreement
    rows, and the per-config summary — enough to replay with
    ``--only-seed`` and diff against a healthy run.
    """
    recorder = FlightRecorder(directory, label=f"seed-{scenario.spec.seed}")
    recorder.record("campaign.scenario", **{
        key: record[key] for key in ("seed", "fingerprint", "slots", "joint", "plants")
    })
    for entry in evaluation.disagreements:
        recorder.record("campaign.disagreement", entry=entry)
    return recorder.anomaly(
        "campaign_disagreement",
        seed=scenario.spec.seed,
        fingerprint=record["fingerprint"],
        disagreements=list(evaluation.disagreements),
        degraded=list(evaluation.degraded),
        truth=record["truth"],
    )


def write_fixture(spec, disagreements, directory: pathlib.Path) -> pathlib.Path:
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": 1,
        "name": spec.name,
        "reason": "campaign disagreement (auto-shrunk); verify before committing",
        "found": {"generator_seed": spec.seed, "disagreements": list(disagreements)},
        "spec": spec.to_dict(),
    }
    path = directory / f"shrunk-{spec_fingerprint(spec)}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=50, help="scenarios to run")
    parser.add_argument("--start-seed", type=int, default=1, help="first generator seed")
    parser.add_argument("--only-seed", type=int, default=None, help="run one seed and exit")
    parser.add_argument(
        "--profile",
        choices=("default", "tiny"),
        default="default",
        help="size envelope (default includes dense-floor-crossing scenarios)",
    )
    parser.add_argument(
        "--matrix",
        choices=("default", "full"),
        default="default",
        help="default = one config per axis (6); full = 16-cell cross product",
    )
    parser.add_argument(
        "--baselines-every",
        type=int,
        default=10,
        help="cross-check L*/BBC on every N-th scenario (0 = never)",
    )
    parser.add_argument(
        "--fixtures-dir",
        type=pathlib.Path,
        default=REPO_ROOT / "tests" / "fixtures" / "scenarios",
        help="where shrunk disagreement fixtures are written",
    )
    parser.add_argument("--report", type=pathlib.Path, default=None, help="JSON report path")
    parser.add_argument(
        "--blackbox",
        type=pathlib.Path,
        default=None,
        help="dump a per-seed blackbox-seed-N.json for every disagreement "
        "into this directory ($REPRO_BLACKBOX works without the flag)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="record disagreements without shrinking"
    )
    arguments = parser.parse_args(argv)
    blackbox_dir = arguments.blackbox
    if blackbox_dir is None:
        env_dir = os.environ.get(BLACKBOX_ENV, "").strip()
        if env_dir:
            blackbox_dir = pathlib.Path(env_dir)

    if arguments.only_seed is not None:
        seeds = [arguments.only_seed]
    else:
        seeds = list(range(arguments.start_seed, arguments.start_seed + arguments.count))
    matrix = full_matrix if arguments.matrix == "full" else default_matrix

    began = time.time()
    rows = []
    failures = 0
    false_alarms = 0
    degraded = 0
    truth_counts = {"proven": 0, "violation": 0}
    for position, seed in enumerate(seeds):
        scenario = generate_scenario(seed, profile=arguments.profile)
        with_baselines = (
            arguments.baselines_every > 0 and position % arguments.baselines_every == 0
        )
        evaluation = evaluate_scenario(
            scenario, matrix(seed), with_baselines=with_baselines
        )
        truth_counts[evaluation.truth["scenario"]] += 1
        degraded += len(evaluation.degraded)
        false_alarms += sum(
            1
            for row in evaluation.baselines.values()
            if row.get("bbc_false_alarm") == "yes"
        )
        record = {
            "seed": seed,
            "fingerprint": spec_fingerprint(scenario.spec),
            "slots": len(scenario.spec.slots),
            "joint": scenario.spec.joint,
            "plants": [slot.plant for slot in scenario.spec.slots],
            "truth": evaluation.truth,
            "seconds": round(sum(o.seconds for o in evaluation.outcomes), 4),
            "disagreements": list(evaluation.disagreements),
            "degraded": list(evaluation.degraded),
        }
        if with_baselines:
            record["baselines"] = evaluation.baselines
        rows.append(record)

        if evaluation.disagreements:
            failures += 1
            print(f"[seed {seed}] DISAGREEMENT:", file=sys.stderr)
            for entry in evaluation.disagreements:
                print(f"  - {entry}", file=sys.stderr)
            if blackbox_dir is not None:
                box = dump_blackbox(blackbox_dir, scenario, evaluation, record)
                print(f"  blackbox: {box}", file=sys.stderr)
                record["blackbox"] = str(box)
            if not arguments.no_shrink:
                try:
                    shrunk = shrink_scenario(
                        scenario.spec,
                        disagreement_predicate(
                            matrix(seed), with_baselines=with_baselines
                        ),
                    )
                    path = write_fixture(
                        shrunk, evaluation.disagreements, arguments.fixtures_dir
                    )
                    print(f"  shrunk fixture: {path}", file=sys.stderr)
                    record["fixture"] = str(path)
                except (ModelError, SynthesisError) as error:
                    print(f"  shrink failed: {error}", file=sys.stderr)

        if (position + 1) % 100 == 0 or position + 1 == len(seeds):
            print(
                f"{position + 1}/{len(seeds)} scenarios, {failures} failing, "
                f"{false_alarms} explained bbc false alarms, "
                f"{degraded} sound chaos degradations, "
                f"{time.time() - began:.0f}s",
                flush=True,
            )

    report = {
        "count": len(seeds),
        "start_seed": seeds[0],
        "profile": arguments.profile,
        "matrix": arguments.matrix,
        "failures": failures,
        "bbc_false_alarms": false_alarms,
        "chaos_degradations": degraded,
        "truth": truth_counts,
        "seconds": round(time.time() - began, 1),
        "scenarios": rows,
    }
    if arguments.report is not None:
        arguments.report.parent.mkdir(parents=True, exist_ok=True)
        arguments.report.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report: {arguments.report}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
