#!/usr/bin/env python3
"""Gate CI on the dense-core performance floors in ``BENCH_loop.json``.

Reads the normalized report written by ``tools/bench_report.py`` and
fails (exit 1) when the dense core misses its floors::

    python tools/perf_gate.py BENCH_loop.json --min-speedup 3.0 --min-k4 1.0

Two numbers are gated from the report's ``"dense"`` section:

* ``dense_vs_dict_speedup_min`` — sequential dense fixpoints vs the
  legacy dict solvers on the 10k-state product.  The floor is deliberately
  below the tracked headline (≥5x with numpy) so scheduler noise on a
  shared runner does not flake the job, while a real regression —
  losing the numpy kernels, re-introducing per-layer conversions —
  still trips it.  On a numpy-absent interpreter the honest stdlib
  floor applies; pass ``--min-speedup`` accordingly.
* ``k4_vs_k1_best_paired`` — the sharded checker at K=4 must beat K=1
  in at least one paired convoy round (strictly greater than 1.0): the
  ``id % K`` ownership makes sharding overhead-free, so losing every
  round means the dense sharded path regressed.

And two from the ``"dense_product"`` section (the id-space product
BFS over the convoy-loop lifecycle of one cold exploration plus warm
updates):

* ``dense_vs_dict_best_paired`` — the dense product BFS must not lose
  to the legacy dict cache at K=1 (at or above ``--min-product``,
  default 1.0).
* ``k4_vs_k1_best_paired`` — K=4 under the automatically selected
  strategy must strictly beat K=1 on at least one paired round
  (above ``--min-product-k4``, default 1.0): the chained schedule's
  analytic ``id % K`` attribution prices sharding at two modulo
  operations per edge, so losing every round means the dense product
  path regressed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=pathlib.Path, help="normalized BENCH_loop.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="floor for dense_vs_dict_speedup_min (default: 3.0)",
    )
    parser.add_argument(
        "--min-k4",
        type=float,
        default=1.0,
        help="floor for k4_vs_k1_best_paired; the gate requires a strictly "
        "greater value (default: 1.0)",
    )
    parser.add_argument(
        "--min-product",
        type=float,
        default=1.0,
        help="floor for dense_product.dense_vs_dict_best_paired; the dense "
        "product BFS must reach it (default: 1.0)",
    )
    parser.add_argument(
        "--min-product-k4",
        type=float,
        default=1.0,
        help="floor for dense_product.k4_vs_k1_best_paired; the gate "
        "requires a strictly greater value (default: 1.0)",
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text())
    dense = report.get("dense")
    if not dense:
        print(f"perf gate: no 'dense' section in {args.report}", file=sys.stderr)
        return 1
    dense_product = report.get("dense_product")
    if not dense_product:
        print(f"perf gate: no 'dense_product' section in {args.report}", file=sys.stderr)
        return 1

    # One row per gated ratio: (label, measured, floor, strict?).  The
    # table prints on pass AND fail so a green CI log still shows how
    # much headroom each floor has left.
    gates = [
        (
            "dense.dense_vs_dict_speedup_min",
            dense.get("dense_vs_dict_speedup_min"),
            args.min_speedup,
            False,
        ),
        (
            "dense.k4_vs_k1_best_paired",
            dense.get("k4_vs_k1_best_paired"),
            args.min_k4,
            True,
        ),
        (
            "dense_product.dense_vs_dict_best_paired",
            dense_product.get("dense_vs_dict_best_paired"),
            args.min_product,
            False,
        ),
        (
            "dense_product.k4_vs_k1_best_paired",
            dense_product.get("k4_vs_k1_best_paired"),
            args.min_product_k4,
            True,
        ),
    ]

    failures = []
    print(f"{'metric':<42} {'measured':>9} {'floor':>8} {'margin':>8}  verdict")
    print("-" * 80)
    for label, measured, floor, strict in gates:
        passed = measured is not None and (
            measured > floor if strict else measured >= floor
        )
        if not passed:
            failures.append(
                f"{label}={measured} "
                + (f"not above {floor}" if strict else f"below floor {floor}")
            )
        shown = "missing" if measured is None else f"{measured:.3f}x"
        margin = "-" if measured is None else f"{measured - floor:+.3f}"
        bound = f"{'>' if strict else '>='}{floor}"
        print(
            f"{label:<42} {shown:>9} {bound:>8} {margin:>8}  "
            f"{'ok' if passed else 'FAIL'}"
        )

    if failures:
        for failure in failures:
            print(f"perf gate FAILED: {failure}", file=sys.stderr)
        return 1
    print("perf gate OK: all floors held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
