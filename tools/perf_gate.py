#!/usr/bin/env python3
"""Gate CI on the dense-core performance floors in ``BENCH_loop.json``.

Reads the normalized report written by ``tools/bench_report.py`` and
fails (exit 1) when the dense core misses its floors::

    python tools/perf_gate.py BENCH_loop.json --min-speedup 3.0 --min-k4 1.0

Two numbers are gated from the report's ``"dense"`` section:

* ``dense_vs_dict_speedup_min`` — sequential dense fixpoints vs the
  legacy dict solvers on the 10k-state product.  The floor is deliberately
  below the tracked headline (≥5x with numpy) so scheduler noise on a
  shared runner does not flake the job, while a real regression —
  losing the numpy kernels, re-introducing per-layer conversions —
  still trips it.  On a numpy-absent interpreter the honest stdlib
  floor applies; pass ``--min-speedup`` accordingly.
* ``k4_vs_k1_best_paired`` — the sharded checker at K=4 must beat K=1
  in at least one paired convoy round (strictly greater than 1.0): the
  ``id % K`` ownership makes sharding overhead-free, so losing every
  round means the dense sharded path regressed.

And two from the ``"dense_product"`` section (the id-space product
BFS over the convoy-loop lifecycle of one cold exploration plus warm
updates):

* ``dense_vs_dict_best_paired`` — the dense product BFS must not lose
  to the legacy dict cache at K=1 (at or above ``--min-product``,
  default 1.0).
* ``k4_vs_k1_best_paired`` — K=4 under the automatically selected
  strategy must strictly beat K=1 on at least one paired round
  (above ``--min-product-k4``, default 1.0): the chained schedule's
  analytic ``id % K`` attribution prices sharding at two modulo
  operations per edge, so losing every round means the dense product
  path regressed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=pathlib.Path, help="normalized BENCH_loop.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="floor for dense_vs_dict_speedup_min (default: 3.0)",
    )
    parser.add_argument(
        "--min-k4",
        type=float,
        default=1.0,
        help="floor for k4_vs_k1_best_paired; the gate requires a strictly "
        "greater value (default: 1.0)",
    )
    parser.add_argument(
        "--min-product",
        type=float,
        default=1.0,
        help="floor for dense_product.dense_vs_dict_best_paired; the dense "
        "product BFS must reach it (default: 1.0)",
    )
    parser.add_argument(
        "--min-product-k4",
        type=float,
        default=1.0,
        help="floor for dense_product.k4_vs_k1_best_paired; the gate "
        "requires a strictly greater value (default: 1.0)",
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text())
    dense = report.get("dense")
    if not dense:
        print(f"perf gate: no 'dense' section in {args.report}", file=sys.stderr)
        return 1
    dense_product = report.get("dense_product")
    if not dense_product:
        print(f"perf gate: no 'dense_product' section in {args.report}", file=sys.stderr)
        return 1

    failures = []
    speedup = dense.get("dense_vs_dict_speedup_min")
    if speedup is None or speedup < args.min_speedup:
        failures.append(
            f"dense_vs_dict_speedup_min={speedup} below floor {args.min_speedup}"
        )
    k4 = dense.get("k4_vs_k1_best_paired")
    if k4 is None or k4 <= args.min_k4:
        failures.append(f"k4_vs_k1_best_paired={k4} not above {args.min_k4}")
    product = dense_product.get("dense_vs_dict_best_paired")
    if product is None or product < args.min_product:
        failures.append(
            f"dense_product.dense_vs_dict_best_paired={product} below floor "
            f"{args.min_product}"
        )
    product_k4 = dense_product.get("k4_vs_k1_best_paired")
    if product_k4 is None or product_k4 <= args.min_product_k4:
        failures.append(
            f"dense_product.k4_vs_k1_best_paired={product_k4} not above "
            f"{args.min_product_k4}"
        )

    if failures:
        for failure in failures:
            print(f"perf gate FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"perf gate OK: dense fixpoints {speedup:.2f}x (floor {args.min_speedup}), "
        f"checker K=4 best-paired {k4:.3f}x (> {args.min_k4}), "
        f"product BFS {product:.3f}x vs dict (floor {args.min_product}), "
        f"product K=4 best-paired {product_k4:.3f}x (> {args.min_product_k4})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
