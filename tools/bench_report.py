#!/usr/bin/env python3
"""Run the incremental-loop benchmarks and write ``BENCH_loop.json``.

Drives ``benchmarks/bench_incremental_loop.py`` and
``benchmarks/bench_dense_core.py`` under pytest-benchmark with
``--benchmark-json``, then normalizes the raw report into the
compact, diffable shape the repository tracks::

    python tools/bench_report.py [--output BENCH_loop.json] [--keep-raw PATH]

The normalized report records, per benchmark: wall-time statistics
(min/median/mean/stddev, rounds), the synthesis-loop shape (iterations,
composed product sizes), the engine's work counters (closure groups
reused/rebuilt, product cache hits/misses, dirty and affected region
sizes, checker fixpoint work), and — for the comparison benchmark — the
measured incremental-vs-full speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILES = (
    REPO_ROOT / "benchmarks" / "bench_incremental_loop.py",
    REPO_ROOT / "benchmarks" / "bench_dense_core.py",
)

#: Wall-time statistics copied verbatim from pytest-benchmark.
_STATS = ("min", "max", "mean", "median", "stddev", "rounds", "iterations")


def run_benchmarks(raw_path: pathlib.Path) -> None:
    """Execute the bench modules, writing pytest-benchmark's raw JSON."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        *(str(path) for path in BENCH_FILES),
        "-q",
        "--benchmark-only",
        f"--benchmark-json={raw_path}",
    ]
    env_src = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = env_src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if completed.returncode != 0:
        raise SystemExit(f"benchmark run failed with exit code {completed.returncode}")


def normalize(raw: dict) -> dict:
    """Flatten the pytest-benchmark report into the tracked shape."""
    report: dict = {
        "machine": {
            "python": raw.get("machine_info", {}).get("python_version"),
            "cpu": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
            "system": raw.get("machine_info", {}).get("system"),
        },
        "benchmarks": {},
    }
    for bench in raw.get("benchmarks", ()):
        stats = bench.get("stats", {})
        entry = {
            "wall_time_seconds": {key: stats.get(key) for key in _STATS},
            **bench.get("extra_info", {}),
        }
        report["benchmarks"][bench["name"]] = entry

    speedup = report["benchmarks"].get("test_incremental_speedup_over_full_recompose")
    if speedup is not None:
        report["headline"] = {
            "speedup_min": speedup.get("speedup_min"),
            "speedup_median": speedup.get("speedup_median"),
            "iterations": speedup.get("iterations"),
            "convoy_ticks": speedup.get("convoy_ticks"),
        }
    k1 = report["benchmarks"].get("test_sharded_loop_k1_no_regression")
    k4 = report["benchmarks"].get("test_sharded_loop_k4_speedup_report")
    if k1 is not None or k4 is not None:
        report["sharded"] = {
            "k1_vs_sequential_best_paired": (k1 or {}).get("k1_vs_sequential_best_paired"),
            "k1_vs_sequential_min_ratio": (k1 or {}).get("k1_vs_sequential_min_ratio"),
            "k4_vs_k1_speedup_min": (k4 or {}).get("k4_vs_k1_speedup_min"),
            "k4_vs_k1_speedup_median": (k4 or {}).get("k4_vs_k1_speedup_median"),
            "shard_handoffs_total": (k4 or {}).get("shard_handoffs_total"),
            "shard_merge_conflicts_total": (k4 or {}).get("shard_merge_conflicts_total"),
        }
    ck1 = report["benchmarks"].get("test_checker_sharded_loop_k1_no_regression")
    ck4 = report["benchmarks"].get("test_checker_sharded_loop_k4_speedup_report")
    if ck1 is not None or ck4 is not None:
        report["checker_sharded"] = {
            "k1_vs_sequential_best_paired": (ck1 or {}).get("k1_vs_sequential_best_paired"),
            "k1_vs_sequential_min_ratio": (ck1 or {}).get("k1_vs_sequential_min_ratio"),
            "k4_vs_k1_speedup_min": (ck4 or {}).get("k4_vs_k1_speedup_min"),
            "k4_vs_k1_speedup_median": (ck4 or {}).get("k4_vs_k1_speedup_median"),
            "checker_shard_handoffs_total": (ck4 or {}).get("checker_shard_handoffs_total"),
            "checker_fixpoint_work_total": (ck4 or {}).get("checker_fixpoint_work_total"),
        }
    fixpoint = report["benchmarks"].get("test_dense_fixpoint_speedup_10k")
    convoy = report["benchmarks"].get("test_dense_convoy_checker_k4_vs_k1")
    intern = report["benchmarks"].get("test_intern_throughput")
    image = report["benchmarks"].get("test_predecessor_image_throughput")
    if fixpoint is not None or convoy is not None:
        report["dense"] = {
            "have_numpy": (fixpoint or image or {}).get("have_numpy"),
            "product_states": (fixpoint or {}).get("product_states"),
            "dense_vs_dict_speedup_min": (fixpoint or {}).get("dense_vs_dict_speedup_min"),
            "dense_vs_dict_speedup_median": (fixpoint or {}).get(
                "dense_vs_dict_speedup_median"
            ),
            "speedup_floor": (fixpoint or {}).get("speedup_floor"),
            "k4_vs_k1_best_paired": (convoy or {}).get("k4_vs_k1_best_paired"),
            "k4_vs_k1_median_ratio": (convoy or {}).get("k4_vs_k1_median_ratio"),
            "cold_states_per_second": (intern or {}).get("cold_states_per_second"),
            "delta_states_per_second": (intern or {}).get("delta_states_per_second"),
            "image_edges_per_second": (image or {}).get("image_edges_per_second"),
        }
    pbfs = report["benchmarks"].get("test_dense_product_bfs_vs_dict_k1")
    pk4 = report["benchmarks"].get("test_dense_product_convoy_k4_vs_k1")
    if pbfs is not None or pk4 is not None:
        report["dense_product"] = {
            "convoy_ticks": (pbfs or pk4 or {}).get("convoy_ticks"),
            "warm_updates": (pbfs or pk4 or {}).get("warm_updates"),
            "product_states": (pbfs or {}).get("product_states"),
            "product_dense_states": (pbfs or {}).get("product_dense_states"),
            "dense_vs_dict_best_paired": (pbfs or {}).get("dense_vs_dict_best_paired"),
            "dense_vs_dict_median_ratio": (pbfs or {}).get("dense_vs_dict_median_ratio"),
            "k4_vs_k1_best_paired": (pk4 or {}).get("k4_vs_k1_best_paired"),
            "k4_vs_k1_median_ratio": (pk4 or {}).get("k4_vs_k1_median_ratio"),
        }
    robust = report["benchmarks"].get("test_robust_overhead_guard")
    if robust is not None:
        report["robust"] = {
            "tests_per_run": robust.get("tests_per_run"),
            "per_raw_execute_seconds": robust.get("per_raw_execute_seconds"),
            "per_supervised_execute_seconds": robust.get("per_supervised_execute_seconds"),
            "per_test_overhead_seconds": robust.get("per_test_overhead_seconds"),
            "robust_overhead_fraction": robust.get("robust_overhead_fraction"),
            "loop_seconds_min": robust.get("loop_seconds_min"),
        }
    remote = report["benchmarks"].get("test_remote_overhead_guard")
    if remote is not None:
        report["remote"] = {
            "per_local_step_seconds": remote.get("per_local_step_seconds"),
            "per_remote_step_seconds": remote.get("per_remote_step_seconds"),
            "per_step_overhead_seconds": remote.get("per_step_overhead_seconds"),
            "cold_spawn_seconds": remote.get("cold_spawn_seconds"),
            "warm_acquire_seconds": remote.get("warm_acquire_seconds"),
            "warm_vs_cold_ratio": remote.get("warm_vs_cold_ratio"),
        }
    flight = report["benchmarks"].get("test_flight_recorder_overhead_guard")
    if flight is not None:
        report["flight"] = {
            "events_per_run": flight.get("events_per_run"),
            "per_null_emit_seconds": flight.get("per_null_emit_seconds"),
            "null_flight_overhead_fraction": flight.get("null_flight_overhead_fraction"),
            "active_flight_overhead_fraction": flight.get(
                "active_flight_overhead_fraction"
            ),
            "active_vs_null_best_paired": flight.get("active_vs_null_best_paired"),
            "active_vs_null_min_ratio": flight.get("active_vs_null_min_ratio"),
            "null_loop_seconds_min": flight.get("null_loop_seconds_min"),
            "active_loop_seconds_min": flight.get("active_loop_seconds_min"),
        }
    traced = report["benchmarks"].get("test_tracing_overhead_guard")
    if traced is not None:
        report["traced"] = {
            "spans_per_run": traced.get("spans_per_run"),
            "per_null_span_seconds": traced.get("per_null_span_seconds"),
            "per_active_span_seconds": traced.get("per_active_span_seconds"),
            "null_tracer_overhead_fraction": traced.get("null_tracer_overhead_fraction"),
            "jsonl_tracer_overhead_fraction": traced.get("jsonl_tracer_overhead_fraction"),
            "jsonl_vs_null_best_paired": traced.get("jsonl_vs_null_best_paired"),
            "jsonl_vs_null_min_ratio": traced.get("jsonl_vs_null_min_ratio"),
            "null_loop_seconds_min": traced.get("null_loop_seconds_min"),
            "jsonl_loop_seconds_min": traced.get("jsonl_loop_seconds_min"),
        }
    return report


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_loop.json",
        help="where to write the normalized report (default: BENCH_loop.json)",
    )
    parser.add_argument(
        "--keep-raw",
        type=pathlib.Path,
        default=None,
        help="also keep pytest-benchmark's raw JSON at this path",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = args.keep_raw or pathlib.Path(tmp) / "bench_raw.json"
        run_benchmarks(raw_path)
        raw = json.loads(raw_path.read_text())

    report = normalize(raw)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    headline = report.get("headline", {})
    if headline.get("speedup_min") is not None:
        print(
            f"wrote {args.output}: incremental speedup "
            f"{headline['speedup_min']:.2f}x (min) / {headline['speedup_median']:.2f}x (median) "
            f"over {headline['iterations']} loop iterations"
        )
    else:
        print(f"wrote {args.output}")
    sharded = report.get("sharded", {})
    if sharded.get("k4_vs_k1_speedup_min") is not None:
        print(
            f"sharded: K=1 no-regression best-paired "
            f"{sharded['k1_vs_sequential_best_paired']:.2f}x, "
            f"K=4 vs K=1 {sharded['k4_vs_k1_speedup_min']:.2f}x (min) / "
            f"{sharded['k4_vs_k1_speedup_median']:.2f}x (median)"
        )
    checker = report.get("checker_sharded", {})
    if checker.get("k4_vs_k1_speedup_min") is not None:
        print(
            f"checker sharded: K=1 no-regression best-paired "
            f"{checker['k1_vs_sequential_best_paired']:.2f}x, "
            f"K=4 vs K=1 {checker['k4_vs_k1_speedup_min']:.2f}x (min) / "
            f"{checker['k4_vs_k1_speedup_median']:.2f}x (median)"
        )
    dense = report.get("dense", {})
    if dense.get("dense_vs_dict_speedup_min") is not None:
        print(
            f"dense: sequential fixpoints {dense['dense_vs_dict_speedup_min']:.2f}x (min) / "
            f"{dense['dense_vs_dict_speedup_median']:.2f}x (median) over dict solvers "
            f"(numpy={dense['have_numpy']}), convoy checker K=4 vs K=1 best-paired "
            f"{dense['k4_vs_k1_best_paired']:.2f}x"
        )
    robust = report.get("robust", {})
    if robust.get("robust_overhead_fraction") is not None:
        print(
            f"robust: fault-free supervised-execution overhead "
            f"{robust['robust_overhead_fraction']:.2%} of loop time "
            f"({robust['tests_per_run']} tests × "
            f"{robust['per_test_overhead_seconds'] * 1e6:.1f}µs)"
        )
    remote = report.get("remote", {})
    if remote.get("per_step_overhead_seconds") is not None:
        print(
            f"remote: warm per-step RPC overhead "
            f"{remote['per_step_overhead_seconds'] * 1e6:.0f}µs "
            f"(local {remote['per_local_step_seconds'] * 1e6:.0f}µs → remote "
            f"{remote['per_remote_step_seconds'] * 1e6:.0f}µs), warm acquire "
            f"{remote['warm_acquire_seconds'] * 1e3:.1f}ms vs cold spawn "
            f"{remote['cold_spawn_seconds'] * 1e3:.1f}ms "
            f"({remote['warm_vs_cold_ratio']:.3f}x)"
        )
    flight = report.get("flight", {})
    if flight.get("null_flight_overhead_fraction") is not None:
        print(
            f"flight: null recorder overhead "
            f"{flight['null_flight_overhead_fraction']:.4%} of loop time, "
            f"active ring {flight['active_flight_overhead_fraction']:.2%} "
            f"({flight['events_per_run']} events; end-to-end min-vs-min "
            f"{flight['active_vs_null_min_ratio']:.3f}x)"
        )
    traced = report.get("traced", {})
    if traced.get("null_tracer_overhead_fraction") is not None:
        print(
            f"traced: NullTracer overhead {traced['null_tracer_overhead_fraction']:.4%} "
            f"of loop time, JSONL streaming {traced['jsonl_tracer_overhead_fraction']:.2%} "
            f"({traced['spans_per_run']} spans; end-to-end min-vs-min "
            f"{traced['jsonl_vs_null_min_ratio']:.3f}x)"
        )


if __name__ == "__main__":
    main()
