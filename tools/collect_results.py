#!/usr/bin/env python3
"""Regenerate the measured numbers quoted in EXPERIMENTS.md.

Runs the headline experiments end to end and prints the tables the
documentation cites, so reviewers can diff documentation against
reality in one command::

    python tools/collect_results.py
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    IntegrationSynthesizer,
    MultiLegacySynthesizer,
    railcab,
)
from repro.baselines import (  # noqa: E402
    LStarLearner,
    MembershipOracle,
    PerfectEquivalenceOracle,
    vasilevskii_bound,
    w_method_suite,
)
from repro.legacy import interface_of  # noqa: E402


def run_single(component, **kwargs):
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        **kwargs,
    ).run()


def banner(text: str) -> None:
    print()
    print(f"--- {text} " + "-" * max(0, 66 - len(text)))


def headline() -> None:
    banner("Figure 6/7: the running example")
    faulty = run_single(railcab.faulty_rear_shuttle())
    correct = run_single(railcab.correct_rear_shuttle(convoy_ticks=1))
    print(
        f"faulty shuttle : {faulty.verdict.value}, {faulty.iteration_count} iterations, "
        f"{faulty.total_tests} tests, fast conflict = {faulty.iterations[-1].fast_conflict}"
    )
    print(
        f"correct shuttle: {correct.verdict.value}, {correct.iteration_count} iterations, "
        f"{correct.total_tests} tests, learned {correct.learned_states} states"
    )


def claim_c2() -> None:
    banner("Claim C2 + §6: ours vs L* on overbuilt shuttles")
    print(f"{'extra':>6} {'|M_r|':>6} {'ours iters':>11} {'ours tests':>11} "
          f"{'learned':>8} {'L* member':>10} {'L* equiv':>9}")
    for extra in (2, 5, 10, 20, 30):
        component = railcab.overbuilt_rear_shuttle(extra_states=extra)
        ours = run_single(railcab.overbuilt_rear_shuttle(extra_states=extra))
        universe = interface_of(component).universe()
        learner = LStarLearner(
            MembershipOracle(railcab.overbuilt_rear_shuttle(extra_states=extra)),
            universe,
            PerfectEquivalenceOracle(component._hidden, universe),
        )
        learner.learn()
        print(
            f"{extra:>6} {component.state_bound:>6} {ours.iteration_count:>11} "
            f"{ours.total_tests:>11} {ours.learned_states:>8} "
            f"{learner.statistics.membership_queries:>10} "
            f"{learner.statistics.equivalence_queries:>9}"
        )


def conformance_cost() -> None:
    banner("§6: W-method suite sizes vs Vasilevskii bound")
    component = railcab.correct_rear_shuttle(convoy_ticks=1)
    universe = interface_of(component).universe()
    learner = LStarLearner(
        MembershipOracle(component),
        universe,
        PerfectEquivalenceOracle(component._hidden, universe),
    )
    dfa = learner.learn()
    print(f"hypothesis size k={dfa.size}, |Σ|={len(universe)}")
    for slack in (0, 1, 2):
        suite = w_method_suite(dfa, universe, state_bound=dfa.size + slack)
        bound = vasilevskii_bound(dfa.size, dfa.size + slack, len(universe))
        print(f"  slack {slack}: suite = {len(suite):>6}, bound = {bound:>7}")


def batching() -> None:
    banner("§7 optimisation: counterexamples per iteration")
    for k in (1, 3, 5):
        result = run_single(
            railcab.correct_rear_shuttle(convoy_ticks=1), counterexamples_per_iteration=k
        )
        print(f"  k={k}: {result.iteration_count} verification rounds, {result.total_tests} tests")


def multi_legacy() -> None:
    banner("§7 future work: two legacy shuttles")
    labelers = {
        "frontShuttle": railcab.front_state_labeler,
        "rearShuttle": railcab.rear_state_labeler,
    }
    result = MultiLegacySynthesizer(
        None,
        [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=1)],
        railcab.PATTERN_CONSTRAINT,
        labelers=labelers,
    ).run()
    print(
        f"two correct   : {result.verdict.value}, {result.iteration_count} iterations, "
        f"{result.total_tests} tests"
    )
    for name, model in sorted(result.final_models.items()):
        print(f"  {name}: {len(model.states)} states / {len(model.transitions)} transitions learned")
    result = MultiLegacySynthesizer(
        None,
        [railcab.forgetful_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=1)],
        railcab.PATTERN_CONSTRAINT,
        labelers=labelers,
    ).run()
    print(
        f"forgetful front: {result.verdict.value} ({result.violation_kind}), "
        f"{result.iteration_count} iterations"
    )


def main() -> int:
    started = time.time()
    headline()
    claim_c2()
    conformance_cost()
    batching()
    multi_legacy()
    print(f"\ntotal wall time: {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
