#!/usr/bin/env python3
"""Fold a recorded trace into a top-N self-time table.

Reads a trace written by ``python -m repro ... --trace FILE`` (either
format: JSONL events or Chrome trace-event JSON — the loader
auto-detects) and prints where the wall-clock went, per span name, with
child time subtracted::

    python tools/trace_report.py trace.jsonl
    python tools/trace_report.py trace.chrome.json --top 10
    python tools/trace_report.py --diff old.jsonl new.jsonl

The fold is :func:`repro.obs.fold_self_time`: spans nest by start-time
containment per track, a span's *self* time is its duration minus its
children's, and rows sort by self time descending.  ``--summary`` adds
the per-iteration phase table when the trace contains ``loop.iteration``
spans.  ``--diff OLD NEW`` compares two recordings of the same workload
span-name by span-name (:func:`repro.obs.fold_diff`) — the regression
attribution half of ``tools/bench_trend.py``: the trend says *that* a
section slowed down, the fold diff says *which spans* absorbed the time.

Exit status: 0 on success, 2 on unusable input (missing file, not a
trace, or a trace with no spans) with a one-line message on stderr.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (
    fold_diff,
    fold_self_time,
    load_trace,
    render_fold_diff,
    render_fold_table,
    render_trace_summary,
)


def load_spans(path: str) -> list:
    """Load one trace or exit 2 with a one-line diagnosis.

    Three distinct failure modes get three distinct messages so the
    caller knows whether to fix the path, the file, or the run that
    produced it.
    """
    try:
        spans, _metrics = load_trace(path)
    except FileNotFoundError:
        print(f"trace_report: {path}: no such file", file=sys.stderr)
        raise SystemExit(2)
    except (ValueError, KeyError, TypeError) as error:
        print(
            f"trace_report: {path}: not a trace file "
            f"(expected --trace JSONL or Chrome trace-event JSON): {error}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if not spans:
        print(
            f"trace_report: {path}: no spans recorded "
            "(was the run traced with --trace or REPRO_TRACE?)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return spans


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace_report",
        description="Top-N self-time fold of a repro --trace recording",
    )
    parser.add_argument(
        "trace", nargs="?", default=None,
        help="trace file (JSONL or Chrome trace-event JSON)",
    )
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="show the N span names with the most self time (default: 20)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="also print the per-iteration phase breakdown",
    )
    parser.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="compare two traces of the same workload: per-span self-time "
        "deltas sorted by magnitude, largest mover first",
    )
    args = parser.parse_args(argv)

    if args.diff is not None:
        if args.trace is not None:
            parser.error("give either one trace or --diff OLD NEW, not both")
        old_path, new_path = args.diff
        old_rows = fold_self_time(load_spans(old_path))
        new_rows = fold_self_time(load_spans(new_path))
        print(f"self-time diff: {old_path} -> {new_path}")
        print(render_fold_diff(fold_diff(old_rows, new_rows), limit=args.top))
        return 0

    if args.trace is None:
        parser.error("a trace file (or --diff OLD NEW) is required")
    spans = load_spans(args.trace)
    print(render_fold_table(fold_self_time(spans), limit=args.top))
    if args.summary:
        print()
        print(render_trace_summary(spans))
    return 0


if __name__ == "__main__":
    sys.exit(main())
