#!/usr/bin/env python3
"""Fold a recorded trace into a top-N self-time table.

Reads a trace written by ``python -m repro ... --trace FILE`` (either
format: JSONL events or Chrome trace-event JSON — the loader
auto-detects) and prints where the wall-clock went, per span name, with
child time subtracted::

    python tools/trace_report.py trace.jsonl
    python tools/trace_report.py trace.chrome.json --top 10

The fold is :func:`repro.obs.fold_self_time`: spans nest by start-time
containment per track, a span's *self* time is its duration minus its
children's, and rows sort by self time descending.  ``--summary`` adds
the per-iteration phase table when the trace contains ``loop.iteration``
spans.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs import fold_self_time, load_trace, render_fold_table, render_trace_summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace_report",
        description="Top-N self-time fold of a repro --trace recording",
    )
    parser.add_argument("trace", help="trace file (JSONL or Chrome trace-event JSON)")
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="show the N span names with the most self time (default: 20)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="also print the per-iteration phase breakdown",
    )
    args = parser.parse_args(argv)

    spans, _metrics = load_trace(args.trace)
    if not spans:
        print(f"{args.trace}: no spans recorded")
        return 1
    print(render_fold_table(fold_self_time(spans), limit=args.top))
    if args.summary:
        print()
        print(render_trace_summary(spans))
    return 0


if __name__ == "__main__":
    sys.exit(main())
