#!/usr/bin/env python3
"""Cross-PR bench trend: append a point, flag per-section regressions.

``tools/bench_report.py`` normalizes one run's benchmark output into
``BENCH_loop.json``; this tool strings those runs together.  Each
invocation appends one *trend point* — the tracked ratios of every
section, keyed by git revision and machine fingerprint — to a trend
file, then checks the new point against the rolling window of previous
points from the *same machine*::

    python tools/bench_trend.py BENCH_loop.json                       # append + check
    python tools/bench_trend.py BENCH_loop.json --trend BENCH_trend.json --rev abc123
    python tools/bench_trend.py --check-only --trend BENCH_trend.json # re-check latest

A metric regresses when it falls outside ``--tolerance`` (default 15%)
of the window median in its *bad* direction — speedup ratios going
down, overhead fractions going up.  Overhead fractions additionally
get an absolute slack (0.005) so a 0.2% overhead drifting to 0.3% on a
noisy runner does not page anyone.  Fewer than ``--min-window`` prior
same-machine points means "insufficient history": the point is
recorded and the check passes.

Exit status: 0 = appended (and check passed or was skipped), 1 = at
least one tracked metric regressed, 2 = unusable input.

When a regression fires, the next question is *where the time went*;
answer it with ``python tools/trace_report.py --diff OLD NEW`` on
traces of the two revisions (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

TREND_SCHEMA = "repro.bench_trend/1"

#: Tracked metrics, dotted ``section.key`` form, by good direction.
#: Speedup ratios must not fall; overhead fractions must not climb.
HIGHER_BETTER = (
    "headline.speedup_min",
    "headline.speedup_median",
    "dense.dense_vs_dict_speedup_min",
    "dense.k4_vs_k1_best_paired",
    "dense_product.dense_vs_dict_best_paired",
    "dense_product.k4_vs_k1_best_paired",
    "checker_sharded.k1_vs_sequential_best_paired",
    "checker_sharded.k4_vs_k1_speedup_min",
)
LOWER_BETTER = (
    "robust.robust_overhead_fraction",
    "traced.null_tracer_overhead_fraction",
    "traced.jsonl_tracer_overhead_fraction",
    "flight.null_flight_overhead_fraction",
    "flight.active_flight_overhead_fraction",
)

#: Absolute slack for lower-better fractions: tiny overheads are noisy
#: in relative terms, so a climb must also clear this much in absolute.
FRACTION_SLACK = 0.005


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown"


def extract_point(report: dict, revision: str) -> dict:
    """One trend point: the tracked metrics present in this report."""
    sections: dict[str, dict] = {}
    for dotted in (*HIGHER_BETTER, *LOWER_BETTER):
        section, key = dotted.split(".", 1)
        value = (report.get(section) or {}).get(key)
        if isinstance(value, (int, float)):
            sections.setdefault(section, {})[key] = value
    return {
        "revision": revision,
        "machine": report.get("machine") or {},
        "sections": sections,
    }


def machine_key(point: dict) -> tuple:
    machine = point.get("machine") or {}
    return tuple(sorted((str(k), str(v)) for k, v in machine.items()))


def metric_value(point: dict, dotted: str):
    section, key = dotted.split(".", 1)
    return (point.get("sections") or {}).get(section, {}).get(key)


def median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def check_point(
    points: list[dict],
    *,
    window: int,
    min_window: int,
    tolerance: float,
) -> list[str]:
    """Regression messages for the newest point vs its rolling window.

    The window holds the most recent prior points whose machine
    fingerprint matches the newest point's — cross-machine ratios are
    not comparable and never mix.
    """
    latest = points[-1]
    history = [
        point for point in points[:-1] if machine_key(point) == machine_key(latest)
    ][-window:]
    if len(history) < min_window:
        print(
            f"bench trend: {len(history)} prior same-machine point(s), "
            f"need {min_window} — regression check skipped"
        )
        return []

    regressions = []
    for dotted in HIGHER_BETTER:
        value = metric_value(latest, dotted)
        baseline = [v for v in (metric_value(p, dotted) for p in history) if v is not None]
        if value is None or not baseline:
            continue
        floor = median(baseline) * (1 - tolerance)
        if value < floor:
            regressions.append(
                f"{dotted}: {value:.3f} fell below {floor:.3f} "
                f"(window median {median(baseline):.3f} over {len(baseline)} runs)"
            )
    for dotted in LOWER_BETTER:
        value = metric_value(latest, dotted)
        baseline = [v for v in (metric_value(p, dotted) for p in history) if v is not None]
        if value is None or not baseline:
            continue
        ceiling = median(baseline) * (1 + tolerance) + FRACTION_SLACK
        if value > ceiling:
            regressions.append(
                f"{dotted}: {value:.4f} climbed above {ceiling:.4f} "
                f"(window median {median(baseline):.4f} over {len(baseline)} runs)"
            )
    return regressions


def render_trend(points: list[dict], *, last: int = 6) -> str:
    """A compact per-revision table of the headline trend metrics."""
    shown = points[-last:]
    columns = (
        ("headline.speedup_min", "headline"),
        ("dense.dense_vs_dict_speedup_min", "dense"),
        ("dense_product.dense_vs_dict_best_paired", "product"),
        ("robust.robust_overhead_fraction", "robust%"),
        ("flight.null_flight_overhead_fraction", "flight%"),
    )
    lines = [
        "{:<12} {:>9} {:>9} {:>9} {:>8} {:>8}".format(
            "revision", *(title for _, title in columns)
        )
    ]
    for point in shown:
        cells = []
        for dotted, _ in columns:
            value = metric_value(point, dotted)
            if value is None:
                cells.append("-")
            elif dotted.endswith("fraction"):
                cells.append(f"{100 * value:.2f}")
            else:
                cells.append(f"{value:.2f}x")
        lines.append(
            "{:<12} {:>9} {:>9} {:>9} {:>8} {:>8}".format(
                str(point.get("revision", "?"))[:12], *cells
            )
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", type=pathlib.Path, nargs="?", default=None,
        help="normalized BENCH_loop.json to append (omit with --check-only)",
    )
    parser.add_argument(
        "--trend", type=pathlib.Path, default=pathlib.Path("BENCH_trend.json"),
        help="trend file to append to / check (default: BENCH_trend.json)",
    )
    parser.add_argument(
        "--rev", default=None,
        help="revision label for the new point (default: git rev-parse --short HEAD)",
    )
    parser.add_argument(
        "--window", type=int, default=5,
        help="rolling window size of prior same-machine points (default: 5)",
    )
    parser.add_argument(
        "--min-window", type=int, default=2,
        help="minimum prior same-machine points before checking (default: 2)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed relative drift from the window median (default: 0.15)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="append the point without running the regression check",
    )
    parser.add_argument(
        "--check-only", action="store_true",
        help="check the latest recorded point without appending",
    )
    args = parser.parse_args(argv)

    if args.trend.exists():
        try:
            trend = json.loads(args.trend.read_text())
        except json.JSONDecodeError as error:
            print(f"bench trend: {args.trend}: not JSON: {error}", file=sys.stderr)
            return 2
        points = trend.get("points")
        if not isinstance(points, list):
            print(f"bench trend: {args.trend}: no 'points' list", file=sys.stderr)
            return 2
    else:
        points = []

    if args.check_only:
        if args.report is not None:
            parser.error("--check-only takes no report argument")
        if not points:
            print(f"bench trend: {args.trend}: no points to check", file=sys.stderr)
            return 2
    else:
        if args.report is None:
            parser.error("a BENCH_loop.json report is required (or --check-only)")
        try:
            report = json.loads(args.report.read_text())
        except FileNotFoundError:
            print(f"bench trend: {args.report}: no such file", file=sys.stderr)
            return 2
        except json.JSONDecodeError as error:
            print(f"bench trend: {args.report}: not JSON: {error}", file=sys.stderr)
            return 2
        point = extract_point(report, args.rev or git_revision())
        if not point["sections"]:
            print(
                f"bench trend: {args.report}: no tracked metrics found "
                "(is this a tools/bench_report.py output?)",
                file=sys.stderr,
            )
            return 2
        # Re-running on the same revision + machine replaces the old
        # point instead of stacking duplicates that would bias the
        # window median toward one flaky commit.
        points = [
            existing
            for existing in points
            if not (
                existing.get("revision") == point["revision"]
                and machine_key(existing) == machine_key(point)
            )
        ]
        points.append(point)
        args.trend.parent.mkdir(parents=True, exist_ok=True)
        args.trend.write_text(
            json.dumps({"schema": TREND_SCHEMA, "points": points}, indent=2, sort_keys=True)
            + "\n"
        )
        print(f"bench trend: recorded {point['revision']} -> {args.trend} "
              f"({len(points)} point(s))")

    print(render_trend(points))
    if args.no_check:
        return 0
    regressions = check_point(
        points,
        window=args.window,
        min_window=args.min_window,
        tolerance=args.tolerance,
    )
    if regressions:
        for message in regressions:
            print(f"bench trend REGRESSION: {message}", file=sys.stderr)
        print(
            "bench trend: attribute with "
            "'python tools/trace_report.py --diff OLD NEW' traces of the two revisions",
            file=sys.stderr,
        )
        return 1
    print("bench trend OK: no tracked metric regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
